//! Regenerates every figure of the paper's evaluation (§6) and the
//! DESIGN.md ablations, printing the same series the paper plots.
//!
//! Usage:
//!
//! ```text
//! figures                 # everything
//! figures fig1 fig4       # selected experiments
//! figures kernel          # kernel-side per-syscall aggregates
//! figures faults          # fault-injection soak matrix
//! figures cluster         # cluster-scale scheduler bench, full tier
//! figures cluster-smoke   # same, CI-sized (writes BENCH_cluster.json)
//! figures parallel        # smoke tier + the sharded-execution speedup gate
//! figures migration       # live-migration protocols, full tier
//! figures migration-smoke # same, CI-sized (writes BENCH_migration.json)
//! figures interp          # interpreter engines (writes BENCH_interp.json)
//! figures --json          # machine-readable output (EXPERIMENTS.md)
//! ```

use bench::json::{to_string_pretty, Json, ToJson};
use bench::scenarios;

fn hr(title: &str) {
    println!();
    println!("==== {title} ====");
}

fn run_fig1(json: bool) {
    let rows = scenarios::fig1();
    if json {
        println!("{}", to_string_pretty(rows.as_slice()));
        return;
    }
    hr("Figure 1: performance of modified system calls (system CPU per op)");
    println!(
        "{:<22} {:>12} {:>12} {:>8} {:>8}",
        "syscall", "orig (ms)", "mod (ms)", "ratio", "paper"
    );
    for r in rows {
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>8.2} {:>8.2}",
            r.syscall, r.original_ms, r.modified_ms, r.ratio, r.paper_ratio
        );
    }
}

fn run_fig2(json: bool) {
    let rows = scenarios::fig2();
    if json {
        println!("{}", to_string_pretty(rows.as_slice()));
        return;
    }
    hr("Figure 2: SIGQUIT vs SIGDUMP vs dumpproc (normalised to SIGQUIT)");
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>8} {:>10} {:>10}",
        "case", "cpu (ms)", "real (ms)", "cpu x", "real x", "paper cpu", "paper real"
    );
    for r in rows {
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>8.2} {:>8.2} {:>10.1} {:>10.1}",
            r.case,
            r.cpu_ms,
            r.real_ms,
            r.cpu_ratio,
            r.real_ratio,
            r.paper_cpu_ratio,
            r.paper_real_ratio
        );
    }
}

fn run_fig3(json: bool) {
    let rows = scenarios::fig3();
    if json {
        println!("{}", to_string_pretty(rows.as_slice()));
        return;
    }
    hr("Figure 3: execve vs rest_proc vs restart (normalised to execve)");
    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>8} {:>10} {:>10}",
        "case", "cpu (ms)", "real (ms)", "cpu x", "real x", "paper cpu", "paper real"
    );
    for r in rows {
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>8.2} {:>8.2} {:>10.1} {:>10.1}",
            r.case,
            r.cpu_ms,
            r.real_ms,
            r.cpu_ratio,
            r.real_ratio,
            r.paper_cpu_ratio,
            r.paper_real_ratio
        );
    }
}

fn run_fig4(json: bool) {
    let rows = scenarios::fig4();
    if json {
        println!("{}", to_string_pretty(rows.as_slice()));
        return;
    }
    hr("Figure 4: migrate real time vs dumpproc+restart (=1)");
    println!(
        "{:<18} {:>12} {:>8} {:>8}",
        "case", "real (ms)", "ratio", "paper"
    );
    for r in rows {
        println!(
            "{:<18} {:>12.0} {:>8.2} {:>8.1}",
            r.case, r.real_ms, r.ratio, r.paper_ratio
        );
    }
}

fn run_kernel(json: bool) {
    let rows = scenarios::kernel_syscalls();
    if json {
        println!("{}", to_string_pretty(rows.as_slice()));
        return;
    }
    hr("Kernel per-syscall aggregates (Fig-1 workloads, modified kernel)");
    println!(
        "{:<12} {:>8} {:>12} {:>10}",
        "syscall", "count", "total (us)", "max (us)"
    );
    for r in rows {
        println!(
            "{:<12} {:>8} {:>12} {:>10}",
            r.syscall, r.count, r.total_us, r.max_us
        );
    }
}

fn run_faults(json: bool) {
    // The CI soak runs with a nonzero seed; the seed only shuffles the
    // per-mille rolls, the sites always fire until their budgets drain.
    let rows = scenarios::fault_soak(0xFA517);
    if json {
        println!("{}", to_string_pretty(rows.as_slice()));
        return;
    }
    hr("Fault soak: migrate under injected faults (R-R placement)");
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "case", "status", "survivor", "injected", "live copies", "dumps left"
    );
    for r in rows {
        println!(
            "{:<16} {:>8} {:>10} {:>10} {:>12} {:>12}",
            r.case, r.status, r.survivor, r.injected, r.live_copies, r.dumps_left
        );
        assert_eq!(r.live_copies, 1, "{}: failure atomicity broken", r.case);
        assert_eq!(r.dumps_left, 0, "{}: orphaned dump files", r.case);
    }
}

fn run_cluster(json: bool, smoke: bool, assert_speedup: bool) {
    // Smoke tier keeps CI fast; the full tier adds the 256-host
    // scan/event comparison and the 1024-host event-only point.
    let (sizes, scan_max): (&[usize], usize) = if smoke {
        (&[16, 64], 64)
    } else {
        (&[16, 64, 256, 1024], 256)
    };
    let rows = scenarios::cluster(sizes, scan_max);
    let soak = scenarios::cluster_soak(0xC1A5);
    // Sharded execution: the 256-host steady state at 1/2/4/8 shard
    // threads (pure-VM workload, so every machine shards; the run is
    // cheap enough for both tiers). The windowed engine makes every
    // cell bit-identical to Exec::Serial — this only measures how fast
    // the identical answer arrives. `figures parallel` and the full
    // tier gate on the 4-thread speedup; the smoke tier records
    // without asserting so a loaded CI host cannot flake the build.
    let par = scenarios::cluster_parallel(256, &[1, 2, 4, 8]);
    if assert_speedup {
        // The speedup gate measures hardware parallelism, so it only
        // means something on a host that has it. On fewer than four
        // cores the shard threads time-slice one CPU and the windowed
        // engine's coordination cost is pure overhead — report the
        // measured rows but skip the gate rather than fail on physics.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 4 {
            let four = par.iter().find(|r| r.threads == 4).expect("4-thread row");
            assert!(
                four.speedup >= 2.0,
                "4-thread sharded run must be >= 2x the 1-thread run (got {:.2}x)",
                four.speedup
            );
        } else {
            eprintln!(
                "figures: speedup gate skipped — host reports {cores} core(s), need >= 4"
            );
        }
    }
    for r in &soak {
        assert!(r.injected > 0, "{}: fault site never fired", r.case);
        assert_eq!(
            r.live, r.expected,
            "{}: hog copies lost or duplicated under faults",
            r.case
        );
        assert_eq!(r.dumps_left, 0, "{}: orphaned dump files", r.case);
    }
    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("cluster_sched".into())),
        ("tier".into(), Json::Str(if smoke { "smoke" } else { "full" }.into())),
        ("rows".into(), rows.as_slice().to_json()),
        ("fault_soak".into(), soak.as_slice().to_json()),
        ("parallel".into(), par.as_slice().to_json()),
    ]);
    let text = to_string_pretty(&report);
    // Land at the workspace root, independent of the cwd cargo uses.
    let dest = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cluster.json");
    std::fs::write(&dest, &text).expect("write BENCH_cluster.json");
    if json {
        println!("{text}");
        return;
    }
    hr("Cluster: scheduler cost vs installation size (BENCH_cluster.json)");
    println!(
        "{:>6} {:<6} {:>10} {:>9} {:>12} {:>12} {:>10}",
        "hosts", "sched", "slices", "host (s)", "events/s", "us/event", "migr/s"
    );
    for r in &rows {
        println!(
            "{:>6} {:<6} {:>10} {:>9.3} {:>12.0} {:>12.3} {:>10.2}",
            r.hosts, r.sched, r.slices, r.host_secs, r.events_per_sec, r.us_per_event,
            r.migrations_per_sec
        );
    }
    hr("Cluster fault soak: one live copy per hog, zero orphaned dumps");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>9} {:>6} {:>9} {:>11}",
        "case", "hosts", "migr", "fail", "injected", "live", "expected", "dumps left"
    );
    for r in &soak {
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>9} {:>6} {:>9} {:>11}",
            r.case, r.hosts, r.migrations, r.failures, r.injected, r.live, r.expected,
            r.dumps_left
        );
    }
    hr("Sharded execution: 256-host steady state vs shard threads");
    println!(
        "{:>6} {:>8} {:>10} {:>9} {:>12} {:>9}",
        "hosts", "threads", "slices", "host (s)", "events/s", "speedup"
    );
    for r in &par {
        println!(
            "{:>6} {:>8} {:>10} {:>9.3} {:>12.0} {:>8.2}x",
            r.hosts, r.threads, r.slices, r.host_secs, r.events_per_sec, r.speedup
        );
    }
}

fn run_migration(json: bool, smoke: bool) {
    let rows = scenarios::migration(smoke);
    for r in &rows {
        assert_eq!(r.status, 0, "{}: migration failed", r.protocol);
        assert_eq!(r.survivor, "target", "{}: did not land on target", r.protocol);
    }
    let eager = rows.iter().find(|r| r.protocol == "eager").expect("eager row");
    let precopy = rows.iter().find(|r| r.protocol == "precopy").expect("precopy row");
    assert!(
        precopy.downtime_ms < eager.downtime_ms,
        "pre-copy downtime ({:.1} ms) must undercut eager ({:.1} ms) on the dirty-page hog",
        precopy.downtime_ms,
        eager.downtime_ms
    );
    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("migration_protocols".into())),
        ("tier".into(), Json::Str(if smoke { "smoke" } else { "full" }.into())),
        ("rows".into(), rows.as_slice().to_json()),
    ]);
    let text = to_string_pretty(&report);
    let dest = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_migration.json");
    std::fs::write(&dest, &text).expect("write BENCH_migration.json");
    if json {
        println!("{text}");
        return;
    }
    hr("Live migration: downtime vs total per protocol (BENCH_migration.json)");
    println!(
        "{:<10} {:>12} {:>10} {:>7} {:>10} {:>9} {:>11}",
        "protocol", "downtime(ms)", "total(ms)", "rounds", "precopied", "fetched", "bytes sent"
    );
    for r in &rows {
        println!(
            "{:<10} {:>12.1} {:>10.1} {:>7} {:>10} {:>9} {:>11}",
            r.protocol, r.downtime_ms, r.total_ms, r.rounds, r.pages_precopied, r.pages_fetched,
            r.bytes_sent
        );
    }
}

fn run_interp(json: bool) {
    let report = bench::interp::InterpReport::measure();
    // The gate compares the fused engine against the *uncached* decoder
    // — the superblock-vs-slot-cached ratio is recorded but not gated,
    // since it collapses on 1-core CI boxes where the measurement loop
    // contends with the rest of the suite.
    assert!(
        report.superblock_speedup() >= 2.5,
        "superblock engine managed only {:.2}x over the uncached decoder (gate: 2.5x)",
        report.superblock_speedup()
    );
    let text = to_string_pretty(&report.to_json());
    let dest = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_interp.json");
    std::fs::write(&dest, &text).expect("write BENCH_interp.json");
    if json {
        println!("{text}");
        return;
    }
    hr("Interpreter throughput: host insn/sec per engine (BENCH_interp.json)");
    println!(
        "{:<12} {:>16} {:>10}",
        "engine", "insn/sec", "vs uncached"
    );
    for (name, v) in [
        ("uncached", report.uncached_insn_per_sec),
        ("cached", report.cached_insn_per_sec),
        ("superblock", report.superblock_insn_per_sec),
    ] {
        println!(
            "{:<12} {:>16.0} {:>9.2}x",
            name,
            v,
            v / report.uncached_insn_per_sec
        );
    }
}

fn run_ablations(json: bool) {
    let daemon = scenarios::ablation_daemon();
    let virt = scenarios::ablation_virt();
    let names = scenarios::ablation_names();
    let ckpt = scenarios::ablation_checkpoint();
    let loadbal = scenarios::ablation_loadbal();
    if json {
        println!(
            "{}",
            Json::Obj(vec![
                ("daemon".into(), daemon.to_json()),
                ("virtualization".into(), virt.to_json()),
                ("name_strings".into(), names.to_json()),
                ("checkpoint".into(), ckpt.to_json()),
                ("loadbal".into(), loadbal.to_json()),
            ])
        );
        return;
    }
    hr("A1: remote-remote migrate transport");
    for r in &daemon {
        println!("{:<8} {:>12.0} ms", r.transport, r.real_ms);
    }
    hr("A2: pid-dependent program after migration (0 = survives)");
    for r in &virt {
        println!("{:<12} status {}", r.kernel, r.status);
    }
    hr("A3: kernel memory for open-file name strings");
    for r in &names {
        println!("{:<18} {:>10} bytes peak", r.strategy, r.peak_bytes);
    }
    hr("A4: checkpoint interval sweep (hog job)");
    println!(
        "{:<12} {:>14} {:>10} {:>16}",
        "interval", "completion", "overhead", "expected loss"
    );
    for r in &ckpt {
        println!(
            "{:<12} {:>12.0}ms {:>9.1}% {:>14.0}ms",
            if r.interval_ms == 0 {
                "none".to_string()
            } else {
                format!("{}ms", r.interval_ms)
            },
            r.completion_ms,
            r.overhead * 100.0,
            r.expected_loss_ms
        );
    }
    hr("A5: load balancing (6 hogs, 3 machines)");
    for r in &loadbal {
        println!(
            "{:<12} makespan {:>10.0} ms, {} migrations",
            r.policy, r.makespan_ms, r.migrations
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let picks: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = picks.is_empty();
    let want = |name: &str| all || picks.contains(&name);

    if want("fig1") {
        run_fig1(json);
    }
    if want("fig2") {
        run_fig2(json);
    }
    if want("fig3") {
        run_fig3(json);
    }
    if want("fig4") {
        run_fig4(json);
    }
    if want("kernel") {
        run_kernel(json);
    }
    if want("faults") {
        run_faults(json);
    }
    // `cluster` runs the full tier (incl. the 1024-host point); bare
    // `figures` and `cluster-smoke` run the CI-sized smoke tier;
    // `parallel` is the smoke tier with the sharded-execution speedup
    // gate armed.
    if picks.contains(&"cluster") {
        run_cluster(json, false, true);
    } else if picks.contains(&"parallel") {
        run_cluster(json, true, true);
    } else if all || picks.contains(&"cluster-smoke") {
        run_cluster(json, true, false);
    }
    if picks.contains(&"migration") {
        run_migration(json, false);
    } else if all || picks.contains(&"migration-smoke") {
        run_migration(json, true);
    }
    if all || picks.contains(&"interp") {
        run_interp(json);
    }
    if all || picks.iter().any(|p| p.starts_with("ablation")) {
        run_ablations(json);
    }
}
