//! Property tests pinning the interpreter's arithmetic to Rust's
//! wrapping semantics, and source-level assembler round trips.

use m68vm::{assemble, Cpu, IsaLevel, StepEvent};
use proptest::prelude::*;

/// Runs a freshly assembled program until its first trap and returns the
/// CPU state.
fn run(src: &str) -> Cpu {
    let obj = assemble(src).expect("assemble");
    let mut mem = obj.to_memory();
    let mut cpu = Cpu::at_entry(obj.entry);
    for _ in 0..10_000 {
        match cpu.step(&mut mem, IsaLevel::Isa2) {
            StepEvent::Executed { .. } => {}
            StepEvent::Trap { .. } => return cpu,
            StepEvent::Faulted(f) => panic!("fault {f:?}"),
        }
    }
    panic!("no trap");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_matches_wrapping_add(a in any::<i32>(), b in any::<i32>()) {
        let cpu = run(&format!(
            "start: move.l #{a}, d1\n add.l #{b}, d1\n trap #0\n"
        ));
        prop_assert_eq!(cpu.d[1], (a as u32).wrapping_add(b as u32));
    }

    #[test]
    fn sub_matches_wrapping_sub(a in any::<i32>(), b in any::<i32>()) {
        let cpu = run(&format!(
            "start: move.l #{a}, d1\n sub.l #{b}, d1\n trap #0\n"
        ));
        prop_assert_eq!(cpu.d[1], (a as u32).wrapping_sub(b as u32));
    }

    #[test]
    fn muls_matches_wrapping_mul(a in any::<i32>(), b in any::<i32>()) {
        let cpu = run(&format!(
            "start: move.l #{a}, d1\n muls.l #{b}, d1\n trap #0\n"
        ));
        prop_assert_eq!(cpu.d[1], a.wrapping_mul(b) as u32);
    }

    #[test]
    fn divs_matches_rust_division(a in any::<i32>(), b in any::<i32>().prop_filter("nonzero", |b| *b != 0)) {
        // i32::MIN / -1 overflows in Rust; the VM wraps.
        let cpu = run(&format!(
            "start: move.l #{a}, d1\n divs.l #{b}, d1\n trap #0\n"
        ));
        prop_assert_eq!(cpu.d[1], a.wrapping_div(b) as u32);
    }

    #[test]
    fn logic_ops_match(a in any::<u32>(), b in any::<u32>()) {
        let cpu = run(&format!(
            "start: move.l #{a}, d1\n move.l #{a}, d2\n move.l #{a}, d3\n \
             and.l #{b}, d1\n or.l #{b}, d2\n eor.l #{b}, d3\n trap #0\n"
        ));
        prop_assert_eq!(cpu.d[1], a & b);
        prop_assert_eq!(cpu.d[2], a | b);
        prop_assert_eq!(cpu.d[3], a ^ b);
    }

    #[test]
    fn shifts_match(a in any::<u32>(), n in 0u32..32) {
        let cpu = run(&format!(
            "start: move.l #{a}, d1\n move.l #{a}, d2\n move.l #{a}, d3\n \
             lsl.l #{n}, d1\n lsr.l #{n}, d2\n asr.l #{n}, d3\n trap #0\n"
        ));
        prop_assert_eq!(cpu.d[1], if n == 0 { a } else { a.wrapping_shl(n) });
        prop_assert_eq!(cpu.d[2], if n == 0 { a } else { a >> n });
        prop_assert_eq!(cpu.d[3], if n == 0 { a } else { ((a as i32) >> n) as u32 });
    }

    #[test]
    fn signed_comparisons_agree_with_rust(a in any::<i32>(), b in any::<i32>()) {
        // blt taken iff a < b  (cmp.l #b, d1 compares d1 against b).
        let cpu = run(&format!(
            "start: move.l #{a}, d1\n cmp.l #{b}, d1\n blt yes\n \
             move.l #0, d7\n trap #0\n yes: move.l #1, d7\n trap #0\n"
        ));
        prop_assert_eq!(cpu.d[7] == 1, a < b, "a={} b={}", a, b);
    }

    #[test]
    fn unsigned_comparisons_agree_with_rust(a in any::<u32>(), b in any::<u32>()) {
        // bcs after cmp = borrow = unsigned less-than.
        let cpu = run(&format!(
            "start: move.l #{}, d1\n cmp.l #{}, d1\n bcs yes\n \
             move.l #0, d7\n trap #0\n yes: move.l #1, d7\n trap #0\n",
            a as i32, b as i32
        ));
        prop_assert_eq!(cpu.d[7] == 1, a < b, "a={} b={}", a, b);
    }

    #[test]
    fn memory_round_trip_through_stack(v in any::<u32>()) {
        let cpu = run(&format!(
            "start: move.l #{}, -(sp)\n move.l (sp)+, d4\n trap #0\n",
            v as i32
        ));
        prop_assert_eq!(cpu.d[4], v);
    }
}

#[test]
fn isa2_bitfield_extract_semantics() {
    // bfextu2 spec = (width << 8) | shift.
    let spec: u32 = (8 << 8) | 4;
    let cpu = run(&format!(
        "start: move.l #0x12345678, d1\n bfextu2 #{spec}, d1\n trap #0\n"
    ));
    assert_eq!(cpu.d[1], (0x1234_5678u32 >> 4) & 0xff);
}

#[test]
fn mac2_multiplies_and_accumulates() {
    let cpu = run("start: move.l #3, d0\n move.l #10, d1\n move.l #5, d2\n \
         mac2 d2, d1\n trap #0\n");
    // d1 += d2 * d0 = 10 + 5*3.
    assert_eq!(cpu.d[1], 25);
}
