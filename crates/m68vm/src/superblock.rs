//! Superblock translation: fused straight-line runs of icache slots.
//!
//! The predecoded icache (PR 1) removed the per-step decode; this tier
//! removes the per-step *dispatch*. A superblock is a straight-line run
//! of predecoded slots — starting at any pc the interpreter actually
//! reaches (branch targets, quantum entry points), ending at the first
//! branch, trap, subroutine call/return, undecodable slot or text-
//! segment boundary — translated once into a vector of micro-ops and
//! executed as a unit:
//!
//! * **direct-threaded dispatch** — each micro-op is a compact enum
//!   variant whose match arm compiles to one jump-table hop, instead of
//!   the slot lookup + full `Instr` operand analysis per step;
//! * **inlined operand fetch** — register/immediate `Size::Long` forms
//!   index the register file directly; everything else falls back to
//!   the ordinary `execute` path as a [`SbOp::Generic`] micro-op;
//! * **fused condition codes** — a backward liveness scan marks each
//!   flag write dead when a later in-block write overwrites all four
//!   CCR bits before any consumer (a conditional branch, a possibly-
//!   faulting op, or the block exit) can observe it; dead writes are
//!   skipped at run time.
//!
//! Translation is **pure cache** in the Milanés sense (DESIGN.md §15):
//! blocks are derived from the immutable `(text, IsaLevel)` pair the
//! icache already owns, are invalidated and rebuilt exactly when the
//! icache is, and never hold guest state. The architected machine —
//! registers, memory, simtime charging — is bit-identical with the
//! translator on or off:
//!
//! * the CCR is materialized before every point at which it is
//!   visible: block exits, traps, and every `Generic` op (which may
//!   fault and hand the registers to the kernel's dump path mid-block);
//! * cost units are charged per *architected instruction* from the same
//!   `cost_units()` table: a completed block charges the precomputed
//!   sum, a mid-block fault charges exactly the instructions that
//!   retired before it (the faulting one charges nothing, like the
//!   slot path);
//! * [`Cpu::step_superblock`] only retires a whole block when it fits
//!   the caller's remaining budget, and single-steps through the slot
//!   path otherwise — so quantum and signal-check pauses land on the
//!   same instruction the slot-by-slot loop would pause on.
//!
//! Blocks never outrun the text segment: translation walks icache
//! slots only (never raw memory), ends with a [`SbOp::Stop`] at the
//! first pc past `text_len`, and the interpreter re-checks the segment
//! there — code copied to and executed from the data segment always
//! takes the live-decode fallback, bytes read fresh from `Memory`.

use std::sync::OnceLock;

use crate::cpu::{Cpu, Fault, Flow, StepEvent};
use crate::icache::{ICache, Slot};
use crate::isa::{Instr, Op, Operand, Size};
use crate::mem::Memory;

/// Longest straight-line run fused into one block. Capped so the
/// budget test in [`Cpu::step_superblock`] stays fine-grained: a block
/// is only retired whole, so its total cost bounds how far past a
/// quantum boundary the fused path could otherwise have to single-step.
pub const MAX_OPS: usize = 64;

/// A translated straight-line run. Built by [`ICache::superblock`],
/// executed by [`Cpu::step_superblock`].
#[derive(Debug)]
pub struct SuperBlock {
    /// Micro-ops; the last one always redirects control (branch, trap,
    /// stop, or a generic whose `Flow` leaves the block).
    ops: Vec<SbOp>,
    /// Side table for [`SbOp::Generic`] micro-ops.
    gens: Vec<GenOp>,
    /// Cost units charged when the whole block retires.
    total_units: u64,
}

impl SuperBlock {
    /// Cost units a full pass through the block charges.
    pub fn total_units(&self) -> u64 {
        self.total_units
    }

    /// Number of architected instructions the block covers.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the block covers no instructions (never built).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// How many micro-ops carry a live (non-elided) flag update —
    /// exposed for the fused-flags tests.
    pub fn live_flag_writes(&self) -> usize {
        self.ops.iter().filter(|op| op.flags_live()).count()
    }
}

/// Source operand of a fused register/immediate micro-op.
#[derive(Clone, Copy, Debug)]
enum Src {
    /// Immediate, inlined at translation time.
    Imm(u32),
    /// Data register.
    D(u8),
}

/// One micro-op. All fused variants are `Size::Long`, register/
/// immediate, non-faulting, cost-unit 1; anything else is `Generic`.
/// `flags: false` marks a condition-code update the liveness scan
/// proved dead.
#[derive(Clone, Copy, Debug)]
enum SbOp {
    /// `move.l src, dN`.
    Move { src: Src, d: u8, flags: bool },
    /// `add.l src, dN`.
    Add { src: Src, d: u8, flags: bool },
    /// `sub.l src, dN`.
    Sub { src: Src, d: u8, flags: bool },
    /// `cmp.l src, dN` — pure flag write; fully dead when elided.
    Cmp { src: Src, d: u8, flags: bool },
    /// `and.l` / `or.l` / `eor.l src, dN`.
    Logic { op: Op, src: Src, d: u8, flags: bool },
    /// `lsl.l` / `lsr.l` / `asr.l #n, dN` (immediate count, pre-masked).
    Shift { op: Op, n: u32, d: u8, flags: bool },
    /// `tst.l dN` — pure flag write.
    Tst { d: u8, flags: bool },
    /// `not.l dN` / `neg.l dN`.
    NotNeg { neg: bool, d: u8, flags: bool },
    /// `nop`.
    Nop,
    /// Any other instruction, executed through [`Cpu::execute`] with
    /// the predecoded `Instr` from the side table. May fault, so it is
    /// a flag-liveness barrier.
    Generic(u16),
    /// `bra target` (terminator).
    Bra { target: u32 },
    /// Conditional branch (terminator); consumes the flags.
    Bcc { op: Op, target: u32, next_pc: u32 },
    /// `trap #vector` (terminator); pc is left after the trap so the
    /// kernel can resume, exactly like the slot path.
    Trap { vector: u8, next_pc: u32 },
    /// Block boundary before `pc`: length cap, a slot the translator
    /// leaves to the slot path, or the end of text. Charges nothing —
    /// the instruction at `pc` has not run.
    Stop { pc: u32 },
}

impl SbOp {
    /// Units of the fused variants (all register/immediate → 1).
    const FUSED_UNITS: u32 = 1;

    fn flags_live(&self) -> bool {
        match *self {
            SbOp::Move { flags, .. }
            | SbOp::Add { flags, .. }
            | SbOp::Sub { flags, .. }
            | SbOp::Cmp { flags, .. }
            | SbOp::Logic { flags, .. }
            | SbOp::Shift { flags, .. }
            | SbOp::Tst { flags, .. }
            | SbOp::NotNeg { flags, .. } => flags,
            _ => false,
        }
    }
}

/// Side-table entry for a [`SbOp::Generic`] micro-op.
#[derive(Clone, Debug)]
struct GenOp {
    instr: Instr,
    /// The instruction's own pc (fault reporting, `execute` contract).
    pc: u32,
    /// Fall-through pc.
    next_pc: u32,
    /// `cost_units()` of this instruction.
    units: u32,
    /// Units of every op before this one — the charge when this op
    /// faults (the faulting instruction itself charges nothing).
    units_before: u64,
}

/// A translated cell: either a block or a marker that this slot is
/// better served by the slot path (fault slots, malformed control
/// transfers at the block head).
#[derive(Debug)]
pub(crate) enum SbEntry {
    Block(Box<SuperBlock>),
    Bypass,
}

/// Lazily translated blocks, one cell per 4-byte icache slot.
///
/// `OnceLock` keeps the read path lock-free and the cache shareable
/// across fork and shard threads through the icache's `Arc`; a racing
/// double translation is benign because `translate` is a pure function
/// of the immutable slots.
pub(crate) struct SbCache {
    cells: Vec<OnceLock<SbEntry>>,
}

impl SbCache {
    pub(crate) fn new(nslots: usize) -> SbCache {
        let mut cells = Vec::with_capacity(nslots);
        cells.resize_with(nslots, OnceLock::new);
        SbCache { cells }
    }

    /// The translated entry for slot `idx`, building it on first use.
    #[inline]
    pub(crate) fn entry<'a>(&'a self, idx: usize, ic: &'a ICache, pc: u32) -> &'a SbEntry {
        self.cells[idx].get_or_init(|| translate(ic, pc))
    }

    /// How many cells hold a translation (for Debug and tests).
    pub(crate) fn translated(&self) -> usize {
        self.cells.iter().filter(|c| c.get().is_some()).count()
    }
}

/// Maps a slot instruction to its fused micro-op, or `None` for the
/// generic path. Only `Size::Long` register/immediate forms fuse; the
/// fused arms replicate `Cpu::execute`'s semantics exactly (pinned by
/// the equivalence tests below).
fn fuse(i: &Instr) -> Option<SbOp> {
    if i.op == Op::Nop {
        return Some(SbOp::Nop);
    }
    if i.size != Size::Long {
        return None;
    }
    let src = match i.src {
        Operand::Imm(v) => Some(Src::Imm(v)),
        Operand::DReg(r) => Some(Src::D(r)),
        _ => None,
    };
    let d = match i.dst {
        Operand::DReg(r) => r,
        _ => return None,
    };
    let flags = true; // The liveness scan prunes these afterwards.
    Some(match i.op {
        Op::Move => SbOp::Move { src: src?, d, flags },
        Op::Add => SbOp::Add { src: src?, d, flags },
        Op::Sub => SbOp::Sub { src: src?, d, flags },
        Op::Cmp => SbOp::Cmp { src: src?, d, flags },
        Op::And | Op::Or | Op::Eor => SbOp::Logic {
            op: i.op,
            src: src?,
            d,
            flags,
        },
        // Shifts fuse only with an immediate count (`execute` masks a
        // register count the same way, but the common encoding is
        // immediate and the constant lets the arm stay branch-light).
        Op::Lsl | Op::Lsr | Op::Asr => match i.src {
            Operand::Imm(n) => SbOp::Shift {
                op: i.op,
                n: n & 63,
                d,
                flags,
            },
            _ => return None,
        },
        Op::Tst if i.src == Operand::None => SbOp::Tst { d, flags },
        Op::Not => SbOp::NotNeg { neg: false, d, flags },
        Op::Neg => SbOp::NotNeg { neg: true, d, flags },
        _ => return None,
    })
}

/// Translates the straight-line run starting at `pc` (which must be an
/// aligned in-text slot — the caller checked).
fn translate(ic: &ICache, start: u32) -> SbEntry {
    let mut ops: Vec<SbOp> = Vec::new();
    let mut gens: Vec<GenOp> = Vec::new();
    let mut total: u64 = 0;
    let mut pc = start;
    loop {
        if ops.len() >= MAX_OPS {
            ops.push(SbOp::Stop { pc });
            break;
        }
        let Some(&Slot::Instr { instr, ilen, units }) = ic.lookup(pc) else {
            // Fault slot or past text end: the slot path reproduces the
            // exact fault (or falls back to live decode past text_end).
            if ops.is_empty() {
                return SbEntry::Bypass;
            }
            ops.push(SbOp::Stop { pc });
            break;
        };
        let next_pc = pc.wrapping_add(ilen);
        if instr.op.is_branch() {
            if let Operand::Abs(target) = instr.dst {
                total += units as u64;
                ops.push(if instr.op == Op::Bra {
                    SbOp::Bra { target }
                } else {
                    SbOp::Bcc {
                        op: instr.op,
                        target,
                        next_pc,
                    }
                });
                break;
            }
            // A branch without an absolute target faults in `execute`;
            // leave it to the slot path.
            if ops.is_empty() {
                return SbEntry::Bypass;
            }
            ops.push(SbOp::Stop { pc });
            break;
        }
        if instr.op == Op::Trap {
            if let Operand::Imm(v) = instr.src {
                total += units as u64;
                ops.push(SbOp::Trap {
                    vector: v as u8,
                    next_pc,
                });
                break;
            }
            if ops.is_empty() {
                return SbEntry::Bypass;
            }
            ops.push(SbOp::Stop { pc });
            break;
        }
        match fuse(&instr) {
            Some(op) => {
                total += SbOp::FUSED_UNITS as u64;
                debug_assert_eq!(units, SbOp::FUSED_UNITS);
                ops.push(op);
                pc = next_pc;
            }
            None => {
                gens.push(GenOp {
                    instr,
                    pc,
                    next_pc,
                    units,
                    units_before: total,
                });
                total += units as u64;
                ops.push(SbOp::Generic((gens.len() - 1) as u16));
                if matches!(instr.op, Op::Jsr | Op::Rts) {
                    // Control leaves the straight line here.
                    break;
                }
                pc = next_pc;
            }
        }
    }
    elide_dead_flags(&mut ops);
    SbEntry::Block(Box::new(SuperBlock {
        ops,
        gens,
        total_units: total,
    }))
}

/// Backward liveness scan over the condition codes.
///
/// Walking from the block exit toward the entry, the flags are *live*
/// wherever a consumer may observe them: the exit itself (the next
/// block, a dump, a kernel writeback may all read SR), a conditional
/// branch, and every `Generic` op — which can fault and expose the
/// registers mid-block. A fused op writes all four CCR bits, so it
/// keeps its update only when the flags are live there, and makes
/// every earlier write dead until the next barrier.
fn elide_dead_flags(ops: &mut [SbOp]) {
    let mut live = true;
    for op in ops.iter_mut().rev() {
        match op {
            // Consumers and fault barriers.
            SbOp::Bcc { .. } | SbOp::Generic(_) => live = true,
            // Flag-neutral.
            SbOp::Nop | SbOp::Bra { .. } | SbOp::Trap { .. } | SbOp::Stop { .. } => {}
            // Fused writers of all four bits.
            SbOp::Move { flags, .. }
            | SbOp::Add { flags, .. }
            | SbOp::Sub { flags, .. }
            | SbOp::Cmp { flags, .. }
            | SbOp::Logic { flags, .. }
            | SbOp::Shift { flags, .. }
            | SbOp::Tst { flags, .. }
            | SbOp::NotNeg { flags, .. } => {
                *flags = live;
                live = false;
            }
        }
    }
}

/// `Size::Long` shift, mirroring `Cpu::execute`'s Lsl/Lsr/Asr arm
/// bit for bit (count already masked to 0..64). Returns `(result, c)`.
#[inline(always)]
fn shift_long(op: Op, d: u32, count: u32) -> (u32, bool) {
    if count == 0 {
        (d, false)
    } else if count >= 32 {
        match op {
            Op::Asr if (d as i32) < 0 => (u32::MAX, true),
            _ => (0, false),
        }
    } else {
        match op {
            Op::Lsl => (d.wrapping_shl(count), (d >> (32 - count)) & 1 != 0),
            Op::Lsr => (d >> count, (d >> (count - 1)) & 1 != 0),
            _ => ((((d as i32) >> count) as u32), (d >> (count - 1)) & 1 != 0),
        }
    }
}

/// How a whole-block run ended.
enum BlockOut {
    /// Block done; `used` units retired, pc at the next instruction.
    Done { used: u64 },
    /// A trap retired; pc is past the trap, `used` includes it.
    Trap { vector: u8, used: u64 },
    /// A generic op faulted; pc at the faulting instruction, which
    /// charges nothing — `used` covers only the retired prefix.
    Faulted { fault: Fault, used: u64 },
}

/// How [`Cpu::step_superblock`] returned to the kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SbExit {
    /// The budget was reached. The pc sits exactly where the slot-by-
    /// slot loop would have paused.
    Paused,
    /// A trap retired (pc already past it); its units are included in
    /// the returned total, so the kernel must not charge them again.
    Trap {
        /// The trap vector.
        vector: u8,
    },
    /// A fault, pc left at the faulting instruction (charged nothing).
    Faulted(Fault),
}

impl Cpu {
    /// One full pass over `sb`. Fused arms never touch `pc` (its value
    /// is architecturally invisible until a visible point, where the
    /// terminator or the generic path materializes it).
    #[inline]
    fn run_block(&mut self, mem: &mut Memory, sb: &SuperBlock) -> BlockOut {
        for op in &sb.ops {
            match *op {
                SbOp::Move { src, d, flags } => {
                    let v = self.src_val(src);
                    self.d[(d & 7) as usize] = v;
                    if flags {
                        self.set_ccr(false, false, v, Size::Long);
                    }
                }
                SbOp::Add { src, d, flags } => {
                    let s = self.src_val(src);
                    let dd = self.d[(d & 7) as usize];
                    let r = dd.wrapping_add(s);
                    if flags {
                        let c = (dd as u64 + s as u64) > u32::MAX as u64;
                        let v = ((dd ^ r) & (s ^ r) & 0x8000_0000) != 0;
                        self.set_ccr(c, v, r, Size::Long);
                    }
                    self.d[(d & 7) as usize] = r;
                }
                SbOp::Sub { src, d, flags } => {
                    let s = self.src_val(src);
                    let dd = self.d[(d & 7) as usize];
                    let r = dd.wrapping_sub(s);
                    if flags {
                        let v = ((dd ^ s) & (dd ^ r) & 0x8000_0000) != 0;
                        self.set_ccr(s > dd, v, r, Size::Long);
                    }
                    self.d[(d & 7) as usize] = r;
                }
                SbOp::Cmp { src, d, flags } => {
                    if flags {
                        let s = self.src_val(src);
                        let dd = self.d[(d & 7) as usize];
                        let r = dd.wrapping_sub(s);
                        let v = ((dd ^ s) & (dd ^ r) & 0x8000_0000) != 0;
                        self.set_ccr(s > dd, v, r, Size::Long);
                    }
                }
                SbOp::Logic { op, src, d, flags } => {
                    let s = self.src_val(src);
                    let dd = self.d[(d & 7) as usize];
                    let r = match op {
                        Op::And => dd & s,
                        Op::Or => dd | s,
                        _ => dd ^ s,
                    };
                    if flags {
                        self.set_ccr(false, false, r, Size::Long);
                    }
                    self.d[(d & 7) as usize] = r;
                }
                SbOp::Shift { op, n, d, flags } => {
                    let dd = self.d[(d & 7) as usize];
                    let (r, c) = shift_long(op, dd, n);
                    if flags {
                        self.set_ccr(c, false, r, Size::Long);
                    }
                    self.d[(d & 7) as usize] = r;
                }
                SbOp::Tst { d, flags } => {
                    if flags {
                        let dd = self.d[(d & 7) as usize];
                        self.set_ccr(false, false, dd, Size::Long);
                    }
                }
                SbOp::NotNeg { neg, d, flags } => {
                    let dd = self.d[(d & 7) as usize];
                    let r = if neg { dd.wrapping_neg() } else { !dd };
                    if flags {
                        self.set_ccr(neg && r != 0, false, r, Size::Long);
                    }
                    self.d[(d & 7) as usize] = r;
                }
                SbOp::Nop => {}
                SbOp::Generic(i) => {
                    let g = &sb.gens[i as usize];
                    // `execute` reports fault pcs from `self.pc` and
                    // pushes `next_pc` for jsr, exactly like the slot
                    // path; materialize the architected pc first.
                    self.pc = g.pc;
                    match self.execute(mem, &g.instr, g.next_pc) {
                        Ok(Flow::Next) => self.pc = g.next_pc,
                        Ok(Flow::Jump(t)) => {
                            self.pc = t;
                            return BlockOut::Done {
                                used: g.units_before + g.units as u64,
                            };
                        }
                        Ok(Flow::Trap(vector)) => {
                            self.pc = g.next_pc;
                            return BlockOut::Trap {
                                vector,
                                used: g.units_before + g.units as u64,
                            };
                        }
                        Err(fault) => {
                            return BlockOut::Faulted {
                                fault,
                                used: g.units_before,
                            }
                        }
                    }
                }
                SbOp::Bra { target } => {
                    self.pc = target;
                    return BlockOut::Done {
                        used: sb.total_units,
                    };
                }
                SbOp::Bcc { op, target, next_pc } => {
                    self.pc = if self.branch_taken(op) { target } else { next_pc };
                    return BlockOut::Done {
                        used: sb.total_units,
                    };
                }
                SbOp::Trap { vector, next_pc } => {
                    self.pc = next_pc;
                    return BlockOut::Trap {
                        vector,
                        used: sb.total_units,
                    };
                }
                SbOp::Stop { pc } => {
                    self.pc = pc;
                    return BlockOut::Done {
                        used: sb.total_units,
                    };
                }
            }
        }
        // Only reachable when the final op is a Generic that fell
        // through (it was a Jsr/Rts whose Flow semantics changed —
        // impossible today, but harmless: pc is already advanced).
        BlockOut::Done {
            used: sb.total_units,
        }
    }

    #[inline(always)]
    fn src_val(&self, src: Src) -> u32 {
        match src {
            Src::Imm(v) => v,
            Src::D(r) => self.d[(r & 7) as usize],
        }
    }

    /// Interprets through superblocks until `budget` cost units are
    /// retired or control leaves the straight-line world (trap, fault).
    ///
    /// Bit-identical to calling [`Cpu::step_cached`] in the kernel's
    /// slot loop with the same budget: a block is retired whole only
    /// when its entire cost fits the remaining budget; otherwise the
    /// slot path single-steps, so the pause lands on exactly the
    /// instruction the per-step loop would have paused on (the first
    /// one where the running total reaches `budget`). Like the slot
    /// loop, at least one instruction always retires.
    ///
    /// The returned `u64` is the units actually retired (a trap's own
    /// units included — the kernel must not add them again).
    pub fn step_superblock(&mut self, mem: &mut Memory, ic: &ICache, budget: u64) -> (u64, SbExit) {
        let mut used: u64 = 0;
        loop {
            let fused = match ic.superblock(self.pc) {
                Some(sb) if used.saturating_add(sb.total_units) <= budget => {
                    match self.run_block(mem, sb) {
                        BlockOut::Done { used: u } => {
                            used += u;
                            true
                        }
                        BlockOut::Trap { vector, used: u } => {
                            return (used + u, SbExit::Trap { vector });
                        }
                        BlockOut::Faulted { fault, used: u } => {
                            return (used + u, SbExit::Faulted(fault));
                        }
                    }
                }
                _ => false,
            };
            if !fused {
                // Slot-by-slot: block missing (non-text pc, bypass
                // slot) or too big for the remaining budget.
                match self.step_cached(mem, ic) {
                    StepEvent::Executed { units } => used += units as u64,
                    StepEvent::Trap { vector, units } => {
                        return (used + units as u64, SbExit::Trap { vector });
                    }
                    StepEvent::Faulted(f) => return (used, SbExit::Faulted(f)),
                }
            }
            if used >= budget {
                return (used, SbExit::Paused);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::icache::ICache;
    use crate::isa::IsaLevel;
    use crate::mem::MemoryLayout;

    const LOOP_SRC: &str = r"
        start:  move.l  #100, d6
        loop:   add.l   #1, d5
                eor.l   d5, d4
                lsr.l   #1, d4
                sub.l   #1, d6
                bgt     loop
                trap    #0
    ";

    /// Mixed workload: fused ALU, shifts at edge counts, generic ops
    /// (memory, word size, mul/div, jsr/rts), both branch polarities.
    const MIXED_SRC: &str = r"
        start:  move.l  #0x80000001, d0
                lsl.l   #1, d0
                asr.l   #3, d0
                lsr.l   #0, d0
                not.l   d1
                neg.l   d1
                move.l  #25, d2
                muls.l  #3, d2
                divs.l  #5, d2
                move.w  #7, d3
                tst.l   d3
                beq     never
                lea     buf, a0
                move.l  d2, (a0)
                move.l  (a0), d4
                jsr     fn
                cmp.l   #1, d5
                bne     never
                trap    #0
        never:  trap    #1
        fn:     move.l  #1, d5
                rts
        buf:    .space  8
    ";

    fn lockstep(src: &str, level: IsaLevel) {
        let obj = assemble(src).unwrap();
        let ic = ICache::build(&obj.text, level);

        // Reference: the slot path, one instruction at a time.
        let mut mem_a = obj.to_memory();
        let mut cpu_a = Cpu::at_entry(obj.entry);
        // Superblocks, driven with a 1-unit budget so every return is
        // comparable to a handful of slot steps.
        let mut mem_b = obj.to_memory();
        let mut cpu_b = Cpu::at_entry(obj.entry);

        let mut units_a: u64 = 0;
        let mut units_b: u64 = 0;
        let mut end_a = None;
        let mut end_b = None;
        for _ in 0..100_000 {
            if end_a.is_none() {
                match cpu_a.step_cached(&mut mem_a, &ic) {
                    StepEvent::Executed { units } => units_a += units as u64,
                    StepEvent::Trap { vector, units } => {
                        units_a += units as u64;
                        end_a = Some(SbExit::Trap { vector });
                    }
                    StepEvent::Faulted(f) => end_a = Some(SbExit::Faulted(f)),
                }
            }
            if end_b.is_none() && units_b <= units_a {
                let budget = (units_a - units_b).max(1);
                let (u, exit) = cpu_b.step_superblock(&mut mem_b, &ic, budget);
                units_b += u;
                match exit {
                    SbExit::Paused => {}
                    other => end_b = Some(other),
                }
            }
            if end_a.is_some() && end_b.is_some() {
                break;
            }
        }
        assert_eq!(end_a, end_b, "terminal events must match");
        assert_eq!(units_a, units_b, "simtime charging must be identical");
        assert_eq!(cpu_a, cpu_b, "register file (incl. SR) must match");
        assert_eq!(mem_a, mem_b, "memory must match");
    }

    #[test]
    fn fused_run_matches_slot_path_bit_for_bit() {
        lockstep(LOOP_SRC, IsaLevel::Isa1);
    }

    #[test]
    fn mixed_generic_run_matches_slot_path_bit_for_bit() {
        lockstep(MIXED_SRC, IsaLevel::Isa2);
    }

    #[test]
    fn every_budget_pauses_on_the_same_instruction() {
        // For every budget 1..total, a superblock run must stop with
        // the same cpu state and charge as the slot loop stopped at
        // the first step where `spent >= budget`.
        let obj = assemble(LOOP_SRC).unwrap();
        let ic = ICache::build(&obj.text, IsaLevel::Isa1);
        for budget in 1..200u64 {
            let mut mem_a = obj.to_memory();
            let mut cpu_a = Cpu::at_entry(obj.entry);
            let mut spent_a: u64 = 0;
            loop {
                match cpu_a.step_cached(&mut mem_a, &ic) {
                    StepEvent::Executed { units } => {
                        spent_a += units as u64;
                        if spent_a >= budget {
                            break;
                        }
                    }
                    ev => panic!("unexpected event {ev:?} under budget {budget}"),
                }
            }
            let mut mem_b = obj.to_memory();
            let mut cpu_b = Cpu::at_entry(obj.entry);
            let (used, exit) = cpu_b.step_superblock(&mut mem_b, &ic, budget);
            assert_eq!(exit, SbExit::Paused, "budget {budget}");
            assert_eq!(used, spent_a, "budget {budget}: charge");
            assert_eq!(cpu_a, cpu_b, "budget {budget}: cpu state");
        }
    }

    #[test]
    fn mid_block_fault_charges_only_the_retired_prefix() {
        // Two fused ops, then a divide by zero: pc must sit at the
        // divide, the charge must cover exactly the two fused ops, and
        // the flags must reflect the *second* op (the generic divide is
        // a liveness barrier, so nothing before it may be elided).
        let src = r"
            start:  move.l #5, d1
                    add.l  #2, d1
                    divs.l d0, d1
                    trap   #0
        ";
        let obj = assemble(src).unwrap();
        let ic = ICache::build(&obj.text, IsaLevel::Isa1);

        let mut mem_a = obj.to_memory();
        let mut cpu_a = Cpu::at_entry(obj.entry);
        let mut spent_a = 0u64;
        let fault_a = loop {
            match cpu_a.step_cached(&mut mem_a, &ic) {
                StepEvent::Executed { units } => spent_a += units as u64,
                StepEvent::Faulted(f) => break f,
                ev => panic!("unexpected {ev:?}"),
            }
        };

        let mut mem_b = obj.to_memory();
        let mut cpu_b = Cpu::at_entry(obj.entry);
        let (used, exit) = cpu_b.step_superblock(&mut mem_b, &ic, u64::MAX);
        assert_eq!(exit, SbExit::Faulted(fault_a));
        assert_eq!(used, spent_a);
        assert_eq!(cpu_a, cpu_b, "pc at the divide, SR from the add");
    }

    #[test]
    fn dead_flags_are_elided_and_live_ones_kept() {
        // add, eor, lsr all die into sub's full CCR write; sub's flags
        // feed bgt. Only sub keeps its update.
        let obj = assemble(LOOP_SRC).unwrap();
        let ic = ICache::build(&obj.text, IsaLevel::Isa1);
        let loop_pc = obj.symbols["loop"];
        let sb = ic.superblock(loop_pc).expect("loop head translates");
        assert_eq!(sb.len(), 5, "add, eor, lsr, sub, bgt");
        assert_eq!(
            sb.live_flag_writes(),
            1,
            "only the sub feeding bgt keeps its flag update"
        );
        // The entry block ends at the same bgt but starts at move #100;
        // the move's flags also die into sub's write.
        let sb0 = ic.superblock(obj.entry).expect("entry translates");
        assert_eq!(sb0.live_flag_writes(), 1);
    }

    #[test]
    fn blocks_end_at_text_boundary_and_never_read_stale_bytes() {
        // A routine with no terminator runs straight to the end of
        // text: the block must Stop at text_end and the interpreter
        // must re-check the segment there (falling into the unmapped
        // gap exactly like the slot path), not run off cached slots.
        let src = r"
            start:  move.l #1, d0
                    add.l  #2, d0
        ";
        let obj = assemble(src).unwrap();
        let ic = ICache::build(&obj.text, IsaLevel::Isa1);
        let sb = ic.superblock(obj.entry).expect("translates");
        assert_eq!(sb.len(), 3, "two fused ops plus the Stop boundary");

        let mut mem_a = obj.to_memory();
        let mut cpu_a = Cpu::at_entry(obj.entry);
        let ev_a = loop {
            match cpu_a.step_cached(&mut mem_a, &ic) {
                StepEvent::Executed { .. } => {}
                ev => break ev,
            }
        };
        let mut mem_b = obj.to_memory();
        let mut cpu_b = Cpu::at_entry(obj.entry);
        let (_, exit) = cpu_b.step_superblock(&mut mem_b, &ic, u64::MAX);
        assert!(
            matches!(ev_a, StepEvent::Faulted(Fault::Unmapped { .. })),
            "running off text faults"
        );
        assert_eq!(SbExit::Faulted(match ev_a {
            StepEvent::Faulted(f) => f,
            _ => unreachable!(),
        }), exit);
        assert_eq!(cpu_a, cpu_b);
        assert_eq!(
            cpu_b.pc,
            MemoryLayout::TEXT_BASE + obj.text.len() as u32,
            "pc parked at the segment boundary"
        );
    }

    #[test]
    fn code_copied_to_data_segment_runs_identically() {
        // The data-segment fallback boundary: a routine copied into
        // and executed from the data segment must behave identically
        // with superblocks on and off — blocks are built from text
        // slots only, so a data-segment pc always takes the live
        // decoder against fresh memory bytes.
        let routine = assemble("start: move.l #42, d3\n add.l #1, d3\n trap #0\n")
            .unwrap()
            .text;
        let obj = assemble(LOOP_SRC).unwrap();
        let ic = ICache::build(&obj.text, IsaLevel::Isa1);
        let mut mem_a = Memory::new(obj.text.clone(), routine.clone(), 0);
        let data_pc = mem_a.data_base();
        let mut cpu_a = Cpu::at_entry(data_pc);
        let mut mem_b = mem_a.clone();
        let mut cpu_b = cpu_a.clone();

        let mut spent_a = 0u64;
        let trap_a = loop {
            match cpu_a.step_cached(&mut mem_a, &ic) {
                StepEvent::Executed { units } => spent_a += units as u64,
                StepEvent::Trap { vector, units } => break (vector, spent_a + units as u64),
                ev => panic!("unexpected {ev:?}"),
            }
        };
        let (used, exit) = cpu_b.step_superblock(&mut mem_b, &ic, u64::MAX);
        assert_eq!(exit, SbExit::Trap { vector: trap_a.0 });
        assert_eq!(used, trap_a.1);
        assert_eq!(cpu_a, cpu_b);
        assert_eq!(cpu_b.d[3], 43);
        assert!(
            ic.superblock(data_pc).is_none(),
            "no superblock exists outside text"
        );
    }

    #[test]
    fn bypass_slots_fall_back_to_the_slot_path() {
        // An illegal word at the block head: superblock() must yield
        // Bypass and step_superblock must fault exactly like the slot
        // path.
        let text = vec![0xFFu8, 0, 0, 0];
        let ic = ICache::build(&text, IsaLevel::Isa1);
        assert!(ic.superblock(MemoryLayout::TEXT_BASE).is_none());
        let mut mem = Memory::new(text, vec![0; 16], 16);
        let mut cpu = Cpu::at_entry(MemoryLayout::TEXT_BASE);
        let (used, exit) = cpu.step_superblock(&mut mem, &ic, u64::MAX);
        assert_eq!(used, 0);
        assert_eq!(
            exit,
            SbExit::Faulted(Fault::IllegalInstruction {
                pc: MemoryLayout::TEXT_BASE
            })
        );
    }

    #[test]
    fn jump_into_extension_words_matches_slot_semantics() {
        // Superblocks can start at any 4-byte offset, including the
        // middle of an encoded instruction; every offset must agree
        // with the slot path (which already agrees with live decode).
        let obj = assemble(MIXED_SRC).unwrap();
        let ic = ICache::build(&obj.text, IsaLevel::Isa2);
        for off in (0..obj.text.len() as u32).step_by(4) {
            let pc = MemoryLayout::TEXT_BASE + off;
            let mut mem_a = obj.to_memory();
            let mut cpu_a = Cpu::at_entry(obj.entry);
            cpu_a.pc = pc;
            let mut mem_b = obj.to_memory();
            let mut cpu_b = cpu_a.clone();
            // One slot step vs a 1-unit superblock budget: both retire
            // at least one instruction and stop.
            let ea = cpu_a.step_cached(&mut mem_a, &ic);
            let (used_b, eb) = cpu_b.step_superblock(&mut mem_b, &ic, 1);
            match ea {
                StepEvent::Executed { units } => {
                    // The superblock may legally retire more than one
                    // instruction here only if a whole block fit in
                    // budget 1 — impossible, so it must stop after one.
                    assert_eq!(eb, SbExit::Paused, "offset {off:#x}");
                    assert_eq!(used_b, units as u64, "offset {off:#x}");
                    assert_eq!(cpu_a, cpu_b, "offset {off:#x}");
                }
                StepEvent::Trap { vector, units } => {
                    assert_eq!(eb, SbExit::Trap { vector }, "offset {off:#x}");
                    assert_eq!(used_b, units as u64, "offset {off:#x}");
                    assert_eq!(cpu_a, cpu_b, "offset {off:#x}");
                }
                StepEvent::Faulted(f) => {
                    assert_eq!(eb, SbExit::Faulted(f), "offset {off:#x}");
                    assert_eq!(cpu_a, cpu_b, "offset {off:#x}");
                }
            }
        }
    }

    #[test]
    fn block_cache_is_shared_and_lazy() {
        let obj = assemble(LOOP_SRC).unwrap();
        let ic = ICache::build(&obj.text, IsaLevel::Isa1);
        assert_eq!(ic.translated_blocks(), 0, "translation is lazy");
        let mut mem = obj.to_memory();
        let mut cpu = Cpu::at_entry(obj.entry);
        let (_, exit) = cpu.step_superblock(&mut mem, &ic, u64::MAX);
        assert_eq!(exit, SbExit::Trap { vector: 0 });
        let n = ic.translated_blocks();
        assert!(n >= 2, "entry + loop head translated, got {n}");
        // A clone (fresh process image path) starts cold again.
        assert_eq!(ic.clone().translated_blocks(), 0);
    }
}
