//! The segmented, big-endian process memory image.
//!
//! Like a 4.2BSD process, an image has three segments:
//!
//! * **text** — read-only instructions, loaded at [`MemoryLayout::TEXT_BASE`];
//! * **data** — initialised data followed by zeroed bss, page-aligned after
//!   the text;
//! * **stack** — a fixed region ending at [`MemoryLayout::STACK_TOP`],
//!   growing downwards.
//!
//! Address zero is unmapped so null-pointer dereferences fault, and writes
//! to text fault, letting the kernel convert both into the appropriate
//! signals.

use std::collections::BTreeSet;

use crate::cpu::Fault;

/// The fixed virtual-address plan shared by every process image.
#[derive(Clone, Copy, Debug)]
pub struct MemoryLayout;

impl MemoryLayout {
    /// Base address of the text segment (page 0 is left unmapped).
    pub const TEXT_BASE: u32 = 0x0000_1000;
    /// Segment alignment (8 KB pages, as on the Sun-2).
    pub const PAGE: u32 = 0x2000;
    /// One past the highest stack address; the stack grows down from here.
    pub const STACK_TOP: u32 = 0x0080_0000;
    /// Maximum stack size in bytes.
    pub const STACK_MAX: u32 = 0x0004_0000; // 256 KB

    /// The base address of the data segment for a given text size.
    pub fn data_base(text_len: u32) -> u32 {
        let end = Self::TEXT_BASE + text_len;
        end.div_ceil(Self::PAGE) * Self::PAGE
    }

    /// The page number holding `addr` (absolute address over 8 KB pages).
    pub fn page_of(addr: u32) -> u32 {
        addr / Self::PAGE
    }

    /// The base address of page number `page`.
    pub fn page_addr(page: u32) -> u32 {
        page * Self::PAGE
    }
}

/// A process memory image.
///
/// Equality deliberately ignores the dirty set: dirty tracking is pure
/// cache in the Milanés sense — a migration image dumped with tracking
/// on must be bit-identical to one dumped with it off. The absent set
/// *is* semantic (a demand-restored image genuinely lacks those pages)
/// and participates in equality.
#[derive(Clone, Debug)]
pub struct Memory {
    text: Vec<u8>,
    /// Initialised data + bss, starting at `data_base`.
    data: Vec<u8>,
    data_base: u32,
    /// The stack region; index 0 is `STACK_TOP - STACK_MAX`.
    stack: Vec<u8>,
    /// Page-granular write tracking over data + stack, armed only while
    /// a pre-copy migration is watching the image.
    dirty: Option<BTreeSet<u32>>,
    /// Data pages not yet fetched from the source dump (demand restore);
    /// any access inside one faults with [`Fault::PageAbsent`].
    absent: BTreeSet<u32>,
}

impl PartialEq for Memory {
    fn eq(&self, other: &Memory) -> bool {
        self.text == other.text
            && self.data == other.data
            && self.data_base == other.data_base
            && self.stack == other.stack
            && self.absent == other.absent
    }
}

impl Eq for Memory {}

impl Memory {
    /// Builds an image from a text segment, initialised data and a bss
    /// size (zero-filled after the data).
    pub fn new(text: Vec<u8>, data: Vec<u8>, bss_len: u32) -> Memory {
        let data_base = MemoryLayout::data_base(text.len() as u32);
        let mut data = data;
        data.resize(data.len() + bss_len as usize, 0);
        Memory {
            text,
            data,
            data_base,
            stack: vec![0; MemoryLayout::STACK_MAX as usize],
            dirty: None,
            absent: BTreeSet::new(),
        }
    }

    /// The text segment bytes.
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// The data segment bytes (data + bss), whose *current* contents the
    /// `SIGDUMP` `a.outXXXXX` file captures.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The base address of the data segment.
    pub fn data_base(&self) -> u32 {
        self.data_base
    }

    /// The stack bytes from `sp` to the top of the stack, i.e. the live
    /// stack contents the `stackXXXXX` dump preserves.
    ///
    /// Returns `None` if `sp` lies outside the stack region.
    pub fn stack_from(&self, sp: u32) -> Option<&[u8]> {
        let base = MemoryLayout::STACK_TOP - MemoryLayout::STACK_MAX;
        if sp < base || sp > MemoryLayout::STACK_TOP {
            return None;
        }
        Some(&self.stack[(sp - base) as usize..])
    }

    /// Overwrites the live stack so that it holds `contents` ending at the
    /// stack top, returning the new stack pointer. Used by `rest_proc()`.
    ///
    /// Fails if `contents` exceeds the stack region.
    pub fn restore_stack(&mut self, contents: &[u8]) -> Option<u32> {
        if contents.len() > MemoryLayout::STACK_MAX as usize {
            return None;
        }
        let sp = MemoryLayout::STACK_TOP - contents.len() as u32;
        let base = MemoryLayout::STACK_TOP - MemoryLayout::STACK_MAX;
        let off = (sp - base) as usize;
        // Zero the region below the new sp: a restore into a previously
        // used image (demand restore reuses the live image in place) must
        // be bit-identical to a restore into a fresh one.
        self.stack[..off].fill(0);
        self.stack[off..].copy_from_slice(contents);
        self.mark_dirty_span(base, MemoryLayout::STACK_MAX as usize);
        Some(sp)
    }

    /// Arms page-granular dirty tracking, with every data and stack page
    /// initially dirty (a pre-copy round starts by sending everything).
    pub fn enable_dirty_tracking(&mut self) {
        self.dirty = Some(self.all_pages());
    }

    /// Disarms dirty tracking, dropping the set.
    pub fn disable_dirty_tracking(&mut self) {
        self.dirty = None;
    }

    /// True while dirty tracking is armed.
    pub fn dirty_tracking(&self) -> bool {
        self.dirty.is_some()
    }

    /// How many pages are currently dirty (0 when tracking is off).
    pub fn dirty_count(&self) -> usize {
        self.dirty.as_ref().map(|d| d.len()).unwrap_or(0)
    }

    /// The currently dirty pages in page order, without clearing them —
    /// for the freeze-time delta dump, which must stay retryable: a
    /// failed dump leaves the set intact so the survivor re-dumps the
    /// same pages.
    pub fn dirty_pages(&self) -> Vec<u32> {
        self.dirty
            .as_ref()
            .map(|d| d.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Drains the dirty set in page order, leaving tracking armed —
    /// one pre-copy round's worth of pages to send.
    pub fn take_dirty(&mut self) -> Vec<u32> {
        match &mut self.dirty {
            Some(d) => std::mem::take(d).into_iter().collect(),
            None => Vec::new(),
        }
    }

    /// Every data and stack page number of this image.
    fn all_pages(&self) -> BTreeSet<u32> {
        let mut pages = BTreeSet::new();
        let data_end = self.data_base + self.data.len() as u32;
        let mut a = self.data_base;
        while a < data_end {
            pages.insert(MemoryLayout::page_of(a));
            a += MemoryLayout::PAGE;
        }
        let base = MemoryLayout::STACK_TOP - MemoryLayout::STACK_MAX;
        let mut a = base;
        while a < MemoryLayout::STACK_TOP {
            pages.insert(MemoryLayout::page_of(a));
            a += MemoryLayout::PAGE;
        }
        pages
    }

    fn mark_dirty_span(&mut self, addr: u32, len: usize) {
        if len == 0 {
            return;
        }
        if let Some(dirty) = &mut self.dirty {
            let first = MemoryLayout::page_of(addr);
            let last = MemoryLayout::page_of(addr + (len as u32 - 1));
            for p in first..=last {
                dirty.insert(p);
            }
        }
    }

    /// The bytes of page `page`, clipped to its segment's end. `None`
    /// when the page maps neither data nor stack, or is absent.
    pub fn page_slice(&self, page: u32) -> Option<&[u8]> {
        if self.absent.contains(&page) {
            return None;
        }
        let base = MemoryLayout::page_addr(page);
        let data_end = self.data_base + self.data.len() as u32;
        if base >= self.data_base && base < data_end {
            let o = (base - self.data_base) as usize;
            let end = (o + MemoryLayout::PAGE as usize).min(self.data.len());
            return Some(&self.data[o..end]);
        }
        let stack_base = MemoryLayout::STACK_TOP - MemoryLayout::STACK_MAX;
        if base >= stack_base && base < MemoryLayout::STACK_TOP {
            let o = (base - stack_base) as usize;
            return Some(&self.stack[o..o + MemoryLayout::PAGE as usize]);
        }
        None
    }

    /// Installs `bytes` at page `page`, bypassing write protection and
    /// dirty marking, and clears the page from the absent set — the
    /// kernel's landing path for a pre-copied or demand-fetched page.
    /// Returns false when the page maps neither data nor stack or the
    /// bytes overrun the segment.
    pub fn install_page(&mut self, page: u32, bytes: &[u8]) -> bool {
        let base = MemoryLayout::page_addr(page);
        let data_end = self.data_base + self.data.len() as u32;
        let stack_base = MemoryLayout::STACK_TOP - MemoryLayout::STACK_MAX;
        let ok = if base >= self.data_base && base < data_end {
            let o = (base - self.data_base) as usize;
            let end = (o + MemoryLayout::PAGE as usize).min(self.data.len());
            if bytes.len() == end - o {
                self.data[o..end].copy_from_slice(bytes);
                true
            } else {
                false
            }
        } else if base >= stack_base && base < MemoryLayout::STACK_TOP {
            let o = (base - stack_base) as usize;
            if bytes.len() == MemoryLayout::PAGE as usize {
                self.stack[o..o + bytes.len()].copy_from_slice(bytes);
                true
            } else {
                false
            }
        } else {
            false
        };
        if ok {
            self.absent.remove(&page);
        }
        ok
    }

    /// Marks data pages as absent (demand restore: their bytes live only
    /// in the source dump until fetched). Pages outside the data segment
    /// are ignored.
    pub fn set_absent(&mut self, pages: impl IntoIterator<Item = u32>) {
        let data_end = self.data_base + self.data.len() as u32;
        for p in pages {
            let base = MemoryLayout::page_addr(p);
            if base >= self.data_base && base < data_end {
                self.absent.insert(p);
            }
        }
    }

    /// True while any page is still absent.
    pub fn has_absent(&self) -> bool {
        !self.absent.is_empty()
    }

    /// The absent page numbers, in order.
    pub fn absent_pages(&self) -> Vec<u32> {
        self.absent.iter().copied().collect()
    }

    /// The first absent byte an access `[addr, addr+len)` would touch.
    fn absent_hit(&self, addr: u32, len: u32) -> Option<u32> {
        if self.absent.is_empty() || len == 0 {
            return None;
        }
        let first = MemoryLayout::page_of(addr);
        let last = MemoryLayout::page_of(addr + len - 1);
        for p in first..=last {
            if self.absent.contains(&p) {
                return Some(addr.max(MemoryLayout::page_addr(p)));
            }
        }
        None
    }

    fn locate(&self, addr: u32, len: u32) -> Result<Region, Fault> {
        let end = addr.checked_add(len).ok_or(Fault::Unmapped { addr })?;
        let text_base = MemoryLayout::TEXT_BASE;
        let text_end = text_base + self.text.len() as u32;
        if addr >= text_base && end <= text_end {
            return Ok(Region::Text((addr - text_base) as usize));
        }
        let data_end = self.data_base + self.data.len() as u32;
        if addr >= self.data_base && end <= data_end {
            if let Some(at) = self.absent_hit(addr, len) {
                return Err(Fault::PageAbsent { addr: at });
            }
            return Ok(Region::Data((addr - self.data_base) as usize));
        }
        let stack_base = MemoryLayout::STACK_TOP - MemoryLayout::STACK_MAX;
        if addr >= stack_base && end <= MemoryLayout::STACK_TOP {
            return Ok(Region::Stack((addr - stack_base) as usize));
        }
        Err(Fault::Unmapped { addr })
    }

    /// Returns the longest readable slice starting at `addr`, up to
    /// `max` bytes, without copying (used by the instruction fetch).
    pub fn read_window(&self, addr: u32, max: u32) -> Result<&[u8], Fault> {
        // Find how many bytes remain in the segment containing `addr`.
        let (seg, off): (&[u8], usize) = match self.locate(addr, 1)? {
            Region::Text(o) => (&self.text, o),
            Region::Data(o) => (&self.data, o),
            Region::Stack(o) => (&self.stack, o),
        };
        let end = (off + max as usize).min(seg.len());
        Ok(&seg[off..end])
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], Fault> {
        let n = len as usize;
        Ok(match self.locate(addr, len)? {
            Region::Text(o) => &self.text[o..o + n],
            Region::Data(o) => &self.data[o..o + n],
            Region::Stack(o) => &self.stack[o..o + n],
        })
    }

    /// Writes `bytes` starting at `addr`; text is write-protected.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Fault> {
        let n = bytes.len();
        match self.locate(addr, n as u32)? {
            Region::Text(_) => Err(Fault::WriteToText { addr }),
            Region::Data(o) => {
                self.data[o..o + n].copy_from_slice(bytes);
                self.mark_dirty_span(addr, n);
                Ok(())
            }
            Region::Stack(o) => {
                self.stack[o..o + n].copy_from_slice(bytes);
                self.mark_dirty_span(addr, n);
                Ok(())
            }
        }
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> Result<u8, Fault> {
        Ok(self.read_bytes(addr, 1)?[0])
    }

    /// Reads a big-endian 16-bit word.
    pub fn read_u16(&self, addr: u32) -> Result<u16, Fault> {
        let b = self.read_bytes(addr, 2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian 32-bit word.
    pub fn read_u32(&self, addr: u32) -> Result<u32, Fault> {
        let b = self.read_bytes(addr, 4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), Fault> {
        self.write_bytes(addr, &[v])
    }

    /// Writes a big-endian 16-bit word.
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), Fault> {
        self.write_bytes(addr, &v.to_be_bytes())
    }

    /// Writes a big-endian 32-bit word.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), Fault> {
        self.write_bytes(addr, &v.to_be_bytes())
    }

    /// Reads a NUL-terminated string of at most `max` bytes starting at
    /// `addr` (the form in which guest programs pass path names).
    pub fn read_cstr(&self, addr: u32, max: usize) -> Result<String, Fault> {
        let mut out = Vec::new();
        let mut a = addr;
        while out.len() < max {
            let b = self.read_u8(a)?;
            if b == 0 {
                break;
            }
            out.push(b);
            a = a.wrapping_add(1);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }
}

enum Region {
    Text(usize),
    Data(usize),
    Stack(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(vec![0xAA; 64], vec![1, 2, 3, 4], 16)
    }

    #[test]
    fn layout_aligns_data_after_text() {
        assert_eq!(MemoryLayout::data_base(0), 0x2000);
        assert_eq!(MemoryLayout::data_base(1), 0x2000);
        assert_eq!(MemoryLayout::data_base(0x1001), 0x4000);
    }

    #[test]
    fn null_page_faults() {
        let m = mem();
        assert!(matches!(m.read_u8(0), Err(Fault::Unmapped { .. })));
        assert!(matches!(m.read_u32(4), Err(Fault::Unmapped { .. })));
    }

    #[test]
    fn text_is_write_protected() {
        let mut m = mem();
        let a = MemoryLayout::TEXT_BASE;
        assert_eq!(m.read_u8(a).unwrap(), 0xAA);
        assert!(matches!(m.write_u8(a, 1), Err(Fault::WriteToText { .. })));
    }

    #[test]
    fn data_and_bss_read_write() {
        let mut m = mem();
        let d = m.data_base();
        assert_eq!(m.read_bytes(d, 4).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(m.read_u8(d + 4).unwrap(), 0); // bss zeroed
        m.write_u32(d + 8, 0xCAFEBABE).unwrap();
        assert_eq!(m.read_u32(d + 8).unwrap(), 0xCAFEBABE);
    }

    #[test]
    fn big_endian_byte_order() {
        let mut m = mem();
        let d = m.data_base();
        m.write_u32(d, 0x11223344).unwrap();
        assert_eq!(m.read_u8(d).unwrap(), 0x11);
        assert_eq!(m.read_u8(d + 3).unwrap(), 0x44);
        assert_eq!(m.read_u16(d).unwrap(), 0x1122);
    }

    #[test]
    fn stack_dump_and_restore_round_trip() {
        let mut m = mem();
        let sp = MemoryLayout::STACK_TOP - 8;
        m.write_u32(sp, 0xAABBCCDD).unwrap();
        m.write_u32(sp + 4, 0x01020304).unwrap();
        let saved = m.stack_from(sp).unwrap().to_vec();
        assert_eq!(saved.len(), 8);

        let mut m2 = Memory::new(vec![0; 64], vec![0; 4], 0);
        let sp2 = m2.restore_stack(&saved).unwrap();
        assert_eq!(sp2, sp);
        assert_eq!(m2.read_u32(sp2).unwrap(), 0xAABBCCDD);
        assert_eq!(m2.read_u32(sp2 + 4).unwrap(), 0x01020304);
    }

    #[test]
    fn restore_oversized_stack_fails() {
        let mut m = mem();
        let too_big = vec![0u8; MemoryLayout::STACK_MAX as usize + 1];
        assert!(m.restore_stack(&too_big).is_none());
    }

    #[test]
    fn restore_stack_at_exact_capacity_fills_the_region() {
        let mut m = mem();
        let full: Vec<u8> = (0..MemoryLayout::STACK_MAX).map(|i| i as u8).collect();
        let sp = m.restore_stack(&full).expect("exactly STACK_MAX fits");
        assert_eq!(sp, MemoryLayout::STACK_TOP - MemoryLayout::STACK_MAX);
        assert_eq!(m.stack_from(sp).unwrap(), &full[..]);
    }

    #[test]
    fn restore_empty_stack_yields_stack_top() {
        let mut m = mem();
        let sp = m.restore_stack(&[]).expect("empty contents are valid");
        assert_eq!(sp, MemoryLayout::STACK_TOP);
        assert_eq!(m.stack_from(sp).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn cstr_reads_until_nul() {
        let mut m = mem();
        let d = m.data_base();
        m.write_bytes(d, b"hello\0junk").unwrap();
        assert_eq!(m.read_cstr(d, 64).unwrap(), "hello");
    }

    #[test]
    fn gap_between_segments_faults() {
        let m = mem();
        let hole = MemoryLayout::TEXT_BASE + 64; // Past text end, before data.
        assert!(m.read_u8(hole).is_err());
    }

    #[test]
    fn restore_stack_zeroes_below_the_new_sp() {
        let mut m = mem();
        // Dirty the whole stack region, then restore a short stack: the
        // bytes below the new sp must read as zero, exactly as they
        // would in a fresh image.
        let base = MemoryLayout::STACK_TOP - MemoryLayout::STACK_MAX;
        let full = vec![0x5A_u8; MemoryLayout::STACK_MAX as usize];
        m.restore_stack(&full).unwrap();
        let sp = m.restore_stack(&[1, 2, 3, 4]).unwrap();
        assert_eq!(sp, MemoryLayout::STACK_TOP - 4);
        assert_eq!(m.read_u8(base).unwrap(), 0, "stale byte at stack base");
        assert_eq!(m.read_u8(sp - 1).unwrap(), 0, "stale byte just below sp");
        assert_eq!(m.read_u32(sp).unwrap(), 0x01020304);

        // And the restored image equals a fresh restore of the same
        // contents into a never-used image.
        let mut fresh = mem();
        fresh.restore_stack(&[1, 2, 3, 4]).unwrap();
        assert_eq!(m.stack_from(base).unwrap(), fresh.stack_from(base).unwrap());
    }

    #[test]
    fn dirty_tracking_starts_all_dirty_and_follows_writes() {
        let mut m = Memory::new(vec![0xAA; 64], vec![0; 3 * 0x2000], 0);
        assert_eq!(m.take_dirty(), Vec::<u32>::new(), "tracking off: no pages");
        m.enable_dirty_tracking();
        let first = m.take_dirty();
        // 3 data pages + 32 stack pages, all initially dirty.
        assert_eq!(first.len(), 3 + (MemoryLayout::STACK_MAX / MemoryLayout::PAGE) as usize);
        assert_eq!(m.dirty_count(), 0);

        // A write dirties exactly the touched pages.
        let d = m.data_base();
        m.write_u32(d + 0x2000, 7).unwrap();
        assert_eq!(m.take_dirty(), vec![MemoryLayout::page_of(d + 0x2000)]);

        // A write spanning a page boundary dirties both pages.
        m.write_bytes(d + 0x2000 - 2, &[1, 2, 3, 4]).unwrap();
        assert_eq!(
            m.take_dirty(),
            vec![MemoryLayout::page_of(d), MemoryLayout::page_of(d + 0x2000)]
        );

        m.disable_dirty_tracking();
        m.write_u32(d, 9).unwrap();
        assert_eq!(m.dirty_count(), 0);
    }

    #[test]
    fn equality_ignores_dirty_state_but_not_absent_pages() {
        let mut a = mem();
        let b = mem();
        a.enable_dirty_tracking();
        assert_eq!(a, b, "dirty tracking is pure cache");
        a.set_absent([MemoryLayout::page_of(a.data_base())]);
        assert_ne!(a, b, "absent pages are semantic state");
    }

    #[test]
    fn absent_page_faults_and_fills() {
        let mut m = Memory::new(vec![0xAA; 64], vec![0x11; 2 * 0x2000], 0);
        let d = m.data_base();
        let page = MemoryLayout::page_of(d + 0x2000);
        m.set_absent([page]);
        assert!(m.has_absent());
        assert_eq!(m.absent_pages(), vec![page]);

        // Reads and writes inside the absent page fault with its address.
        assert!(matches!(
            m.read_u8(d + 0x2000),
            Err(Fault::PageAbsent { addr }) if addr == d + 0x2000
        ));
        assert!(matches!(m.write_u8(d + 0x2000, 1), Err(Fault::PageAbsent { .. })));
        // A spanning access faults at the first absent byte.
        assert!(matches!(
            m.read_u32(d + 0x2000 - 2),
            Err(Fault::PageAbsent { addr }) if addr == d + 0x2000
        ));
        // The present page still works, and page_slice refuses the hole.
        assert_eq!(m.read_u8(d).unwrap(), 0x11);
        assert!(m.page_slice(page).is_none());

        // Installing the page clears the hole.
        assert!(m.install_page(page, &vec![0x22; 0x2000]));
        assert!(!m.has_absent());
        assert_eq!(m.read_u8(d + 0x2000).unwrap(), 0x22);
        assert_eq!(m.page_slice(page).unwrap()[0], 0x22);
    }

    #[test]
    fn install_page_rejects_bad_pages_and_lengths() {
        let mut m = mem();
        assert!(!m.install_page(0, &[0; 0x2000]), "page 0 is unmapped");
        let d = MemoryLayout::page_of(m.data_base());
        assert!(!m.install_page(d, &[0; 7]), "length must match the page span");
        // Short final data page: the clipped length is what fits.
        let span = m.page_slice(d).unwrap().len();
        assert!(m.install_page(d, &vec![3; span]));
        assert_eq!(m.read_u8(m.data_base()).unwrap(), 3);
    }
}
