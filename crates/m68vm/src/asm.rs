//! A two-pass assembler for the VM's instruction set.
//!
//! The syntax is a readable subset of classic `as` for the 68k:
//!
//! ```text
//! | The paper's test program skeleton.
//!         .text
//!         .global start
//! start:  move.l  #0, d1
//! loop:   add.l   #1, d1
//!         add.l   #1, counter
//!         cmp.l   #100, d1
//!         blt     loop
//!         move.l  #1, d0          | exit(0)
//!         move.l  #0, d1
//!         trap    #0
//!         .data
//! counter:.long   0
//! msg:    .asciz  "hello, world\n"
//!         .bss
//! buf:    .space  128
//! ```
//!
//! * Comments start with `|` or `;` and run to end of line.
//! * Labels end with `:`; `start` (or `_start`) names the entry point.
//! * Operands: `#imm`, `dN`, `aN`/`sp`, `(aN)`, `(aN)+`, `-(aN)`,
//!   `disp(aN)`, and bare symbols/numbers as absolute addresses.
//!   Immediates and displacements accept decimal, `0x` hex, `0o` octal,
//!   character literals `'c'`, and `symbol+n` / `symbol-n` expressions.
//! * Directives: `.text`, `.data`, `.bss`, `.section <name>`, `.global`,
//!   `.byte`, `.word`, `.long`, `.ascii`, `.asciz`, `.space`, `.align`,
//!   `.equ`. Unknown sections and directives are reported as errors with
//!   the offending line, never a panic.
//!
//! Pass one sizes every item (instruction lengths depend only on operand
//! *forms*); pass two resolves symbols and encodes.

use std::collections::BTreeMap;

use crate::encode::encode;
use crate::isa::{Instr, IsaLevel, Op, Operand, Size};
use crate::mem::MemoryLayout;
use crate::object::Object;

/// An assembly failure with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Section {
    Text,
    Data,
    Bss,
}

/// A symbolic operand, resolved to a concrete [`Operand`] in pass two.
#[derive(Clone, Debug, PartialEq, Eq)]
enum SymOperand {
    Ready(Operand),
    /// `#symbol+off`.
    ImmSym(String, i64),
    /// Bare `symbol+off` used as an absolute address.
    AbsSym(String, i64),
    /// `symbol(aN)`.
    DispSym(String, i64, u8),
}

impl SymOperand {
    fn has_ext(&self) -> bool {
        match self {
            SymOperand::Ready(o) => o.has_ext(),
            _ => true,
        }
    }
}

#[derive(Clone, Debug)]
enum Item {
    Instr {
        line: usize,
        op: Op,
        size: Size,
        src: SymOperand,
        dst: SymOperand,
    },
    Bytes {
        /// Source line, for section-placement diagnostics.
        line: usize,
        bytes: Vec<u8>,
    },
    Space(u32),
}

impl Item {
    fn len(&self) -> u32 {
        match self {
            Item::Instr { src, dst, .. } => {
                let mut n = 4;
                if src.has_ext() {
                    n += 4;
                }
                if dst.has_ext() {
                    n += 4;
                }
                n
            }
            Item::Bytes { bytes, .. } => bytes.len() as u32,
            Item::Space(n) => *n,
        }
    }
}

/// Assembles a source file into an [`Object`].
pub fn assemble(source: &str) -> Result<Object, AsmError> {
    // Items per section, indexed by `sec_idx` — infallible by
    // construction (a string-keyed map here once left `assemble` one
    // misspelled key away from a `get_mut(...).unwrap()` panic; an
    // unknown section name must surface as an `AsmError` instead).
    let mut sections: [Vec<Item>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    // Symbol name -> (section, offset) or absolute value (.equ).
    let mut sym_loc: BTreeMap<String, (Section, u32)> = BTreeMap::new();
    let mut sym_abs: BTreeMap<String, i64> = BTreeMap::new();
    let mut offsets = [0u32; 3]; // text, data, bss
    let mut section = Section::Text;

    fn sec_idx(s: Section) -> usize {
        match s {
            Section::Text => 0,
            Section::Data => 1,
            Section::Bss => 2,
        }
    }
    fn sec_by_name(name: &str) -> Option<Section> {
        match name.trim_start_matches('.') {
            "text" => Some(Section::Text),
            "data" => Some(Section::Data),
            "bss" => Some(Section::Bss),
            _ => None,
        }
    }

    // ---------- Pass one: parse, size, place symbols ----------
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = strip_comment(raw).trim().to_string();
        // Labels (possibly several) at the front.
        while let Some(colon) = find_label_colon(&text) {
            let label = text[..colon].trim().to_string();
            if label.is_empty() || !is_ident(&label) {
                return err(line, format!("bad label `{label}`"));
            }
            if sym_loc.contains_key(&label) || sym_abs.contains_key(&label) {
                return err(line, format!("duplicate symbol `{label}`"));
            }
            sym_loc.insert(label, (section, offsets[sec_idx(section)]));
            text = text[colon + 1..].trim().to_string();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix('.') {
            // Directive.
            let (dir, args) = split_first_word(rest);
            match dir {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "bss" => section = Section::Bss,
                "section" => {
                    let name = args.trim();
                    if name.is_empty() {
                        return err(line, ".section needs a name");
                    }
                    section = sec_by_name(name).ok_or_else(|| AsmError {
                        line,
                        message: format!(
                            "unknown section `{name}` (this assembler has .text, .data and .bss)"
                        ),
                    })?;
                }
                "global" | "globl" => {} // Accepted; all symbols are visible.
                "equ" => {
                    let parts: Vec<&str> = args.splitn(2, ',').collect();
                    if parts.len() != 2 {
                        return err(line, ".equ needs `name, value`");
                    }
                    let name = parts[0].trim().to_string();
                    let value = parse_int(parts[1].trim()).ok_or_else(|| AsmError {
                        line,
                        message: format!("bad .equ value `{}`", parts[1].trim()),
                    })?;
                    sym_abs.insert(name, value);
                }
                "byte" | "word" | "long" | "ascii" | "asciz" | "space" | "align" => {
                    let item = parse_data_directive(dir, args, line, section)?;
                    let idx = sec_idx(section);
                    // .align pads relative to the current offset.
                    let item = if dir == "align" {
                        let n = match item {
                            Item::Space(n) => n,
                            _ => unreachable!(),
                        };
                        let cur = offsets[idx];
                        let pad = if n == 0 { 0 } else { (n - cur % n) % n };
                        Item::Space(pad)
                    } else {
                        item
                    };
                    offsets[idx] += item.len();
                    sections[idx].push(item);
                }
                other => return err(line, format!("unknown directive `.{other}`")),
            }
            continue;
        }
        // Instruction.
        if section != Section::Text {
            return err(line, "instructions are only allowed in .text");
        }
        let item = parse_instruction(&text, line)?;
        offsets[0] += item.len();
        sections[sec_idx(Section::Text)].push(item);
    }

    // ---------- Address plan ----------
    let text_len = offsets[0];
    let data_base = MemoryLayout::data_base(text_len);
    let bss_base = data_base + offsets[1];
    let addr_of = |sec: Section, off: u32| -> u32 {
        match sec {
            Section::Text => MemoryLayout::TEXT_BASE + off,
            Section::Data => data_base + off,
            Section::Bss => bss_base + off,
        }
    };

    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    for (name, (sec, off)) in &sym_loc {
        symbols.insert(name.clone(), addr_of(*sec, *off));
    }
    for (name, value) in &sym_abs {
        symbols.insert(name.clone(), *value as u32);
    }

    let resolve = |name: &str, add: i64, line: usize| -> Result<u32, AsmError> {
        let base = symbols.get(name).copied().ok_or_else(|| AsmError {
            line,
            message: format!("undefined symbol `{name}`"),
        })?;
        Ok((base as i64 + add) as u32)
    };

    // ---------- Pass two: encode ----------
    let mut required_isa = IsaLevel::Isa1;
    let mut text = Vec::with_capacity(text_len as usize);
    for item in &sections[sec_idx(Section::Text)] {
        match item {
            Item::Instr {
                line,
                op,
                size,
                src,
                dst,
            } => {
                if op.isa2_only() {
                    required_isa = IsaLevel::Isa2;
                }
                let src = resolve_operand(src, *line, &resolve)?;
                let dst = resolve_operand(dst, *line, &resolve)?;
                let instr = Instr::new(*op, *size, src, dst);
                encode(&instr, &mut text);
            }
            Item::Bytes { bytes, .. } => text.extend_from_slice(bytes),
            Item::Space(n) => text.extend(std::iter::repeat_n(0u8, *n as usize)),
        }
    }
    let mut data = Vec::with_capacity(offsets[1] as usize);
    for item in &sections[sec_idx(Section::Data)] {
        match item {
            Item::Bytes { bytes, .. } => data.extend_from_slice(bytes),
            Item::Space(n) => data.extend(std::iter::repeat_n(0u8, *n as usize)),
            Item::Instr { line, .. } => return err(*line, "instruction in .data"),
        }
    }
    let mut bss_len = 0u32;
    for item in &sections[sec_idx(Section::Bss)] {
        match item {
            Item::Space(n) => bss_len += n,
            Item::Bytes { bytes, .. } if bytes.iter().all(|&x| x == 0) => {
                bss_len += bytes.len() as u32
            }
            Item::Bytes { line, .. } => {
                return err(*line, "non-zero data in .bss");
            }
            Item::Instr { line, .. } => return err(*line, "instruction in .bss"),
        }
    }

    let entry = symbols
        .get("start")
        .or_else(|| symbols.get("_start"))
        .copied()
        .unwrap_or(MemoryLayout::TEXT_BASE);

    Ok(Object {
        text,
        data,
        bss_len,
        entry,
        symbols,
        required_isa,
    })
}

fn resolve_operand(
    s: &SymOperand,
    line: usize,
    resolve: &dyn Fn(&str, i64, usize) -> Result<u32, AsmError>,
) -> Result<Operand, AsmError> {
    Ok(match s {
        SymOperand::Ready(o) => *o,
        SymOperand::ImmSym(name, add) => Operand::Imm(resolve(name, *add, line)?),
        SymOperand::AbsSym(name, add) => Operand::Abs(resolve(name, *add, line)?),
        SymOperand::DispSym(name, add, reg) => {
            Operand::IndDisp(*reg, resolve(name, *add, line)? as i32)
        }
    })
}

fn strip_comment(line: &str) -> &str {
    // Comments start with `|` or `;` outside of string/char literals.
    let mut in_str = false;
    let mut in_char = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !in_char && !prev_escape => in_str = !in_str,
            '\'' if !in_str && !prev_escape => in_char = !in_char,
            '|' | ';' if !in_str && !in_char => return &line[..i],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

fn find_label_colon(line: &str) -> Option<usize> {
    // A label is an identifier followed by `:` before any whitespace-free
    // non-identifier text.
    let mut chars = line.char_indices();
    let mut seen_ident = false;
    for (i, c) in &mut chars {
        if c == ':' {
            return if seen_ident { Some(i) } else { None };
        }
        if c.is_alphanumeric() || c == '_' || c == '.' {
            seen_ident = true;
        } else {
            return None;
        }
    }
    None
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
        && !s.chars().next().unwrap().is_ascii_digit()
}

fn split_first_word(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    }
}

/// Parses integers: decimal, 0x/0o prefixed, 'c' char literals, negatives.
fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('\'') {
        let body = body.strip_suffix('\'')?;
        let c = unescape_char(body)?;
        return Some(c as i64);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(h) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(h, 16).ok()?
    } else if let Some(o) = body.strip_prefix("0o").or_else(|| body.strip_prefix("0O")) {
        i64::from_str_radix(o, 8).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn unescape_char(s: &str) -> Option<char> {
    let mut it = s.chars();
    match it.next()? {
        '\\' => {
            let c = it.next()?;
            if it.next().is_some() {
                return None;
            }
            Some(match c {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                '0' => '\0',
                '\\' => '\\',
                '\'' => '\'',
                '"' => '"',
                _ => return None,
            })
        }
        c => {
            if it.next().is_some() {
                None
            } else {
                Some(c)
            }
        }
    }
}

fn unescape_string(s: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let mut out = Vec::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            let e = chars.next().ok_or_else(|| AsmError {
                line,
                message: "dangling escape in string".into(),
            })?;
            out.push(match e {
                'n' => b'\n',
                't' => b'\t',
                'r' => b'\r',
                '0' => 0,
                '\\' => b'\\',
                '"' => b'"',
                other => {
                    return err(line, format!("unknown escape `\\{other}`"));
                }
            });
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(out)
}

fn parse_data_directive(
    dir: &str,
    args: &str,
    line: usize,
    section: Section,
) -> Result<Item, AsmError> {
    match dir {
        "byte" | "word" | "long" => {
            let mut bytes = Vec::new();
            for part in args.split(',') {
                let v = parse_int(part.trim()).ok_or_else(|| AsmError {
                    line,
                    message: format!("bad integer `{}`", part.trim()),
                })?;
                match dir {
                    "byte" => bytes.push(v as u8),
                    "word" => bytes.extend_from_slice(&(v as u16).to_be_bytes()),
                    _ => bytes.extend_from_slice(&(v as u32).to_be_bytes()),
                }
            }
            if section == Section::Bss && bytes.iter().any(|&b| b != 0) {
                return err(line, "non-zero initialiser in .bss");
            }
            Ok(Item::Bytes { line, bytes })
        }
        "ascii" | "asciz" => {
            let args = args.trim();
            let inner = args
                .strip_prefix('"')
                .and_then(|a| a.strip_suffix('"'))
                .ok_or_else(|| AsmError {
                    line,
                    message: "string directives need a quoted string".into(),
                })?;
            let mut bytes = unescape_string(inner, line)?;
            if dir == "asciz" {
                bytes.push(0);
            }
            Ok(Item::Bytes { line, bytes })
        }
        "space" | "align" => {
            let n = parse_int(args).ok_or_else(|| AsmError {
                line,
                message: format!("bad count `{args}`"),
            })?;
            if n < 0 {
                return err(line, "negative size");
            }
            Ok(Item::Space(n as u32))
        }
        _ => unreachable!("checked by caller"),
    }
}

fn mnemonic_to_op(m: &str) -> Option<Op> {
    use Op::*;
    Some(match m {
        "move" => Move,
        "lea" => Lea,
        "add" => Add,
        "sub" => Sub,
        "muls" => Muls,
        "divs" => Divs,
        "and" => And,
        "or" => Or,
        "eor" => Eor,
        "not" => Not,
        "neg" => Neg,
        "lsl" => Lsl,
        "lsr" => Lsr,
        "asr" => Asr,
        "cmp" => Cmp,
        "tst" => Tst,
        "bra" => Bra,
        "beq" => Beq,
        "bne" => Bne,
        "blt" => Blt,
        "ble" => Ble,
        "bgt" => Bgt,
        "bge" => Bge,
        "bcs" => Bcs,
        "bcc" => Bcc,
        "bmi" => Bmi,
        "bpl" => Bpl,
        "jsr" => Jsr,
        "rts" => Rts,
        "trap" => Trap,
        "nop" => Nop,
        "mac2" => Mac2,
        "bfextu2" => Bfextu2,
        "extb2" => Extb2,
        _ => return None,
    })
}

fn parse_instruction(text: &str, line: usize) -> Result<Item, AsmError> {
    let (head, rest) = split_first_word(text);
    let (mnemonic, size) = match head.rsplit_once('.') {
        Some((m, "b")) => (m, Size::Byte),
        Some((m, "w")) => (m, Size::Word),
        Some((m, "l")) => (m, Size::Long),
        _ => (head, Size::Long),
    };
    let op = mnemonic_to_op(mnemonic).ok_or_else(|| AsmError {
        line,
        message: format!("unknown mnemonic `{head}`"),
    })?;
    let operands = split_operands(rest);
    let parsed: Vec<SymOperand> = operands
        .iter()
        .map(|o| parse_operand(o, line))
        .collect::<Result<_, _>>()?;

    use Op::*;
    let (src, dst) = match (op, parsed.len()) {
        (Rts | Nop, 0) => (
            SymOperand::Ready(Operand::None),
            SymOperand::Ready(Operand::None),
        ),
        (Trap, 1) => (parsed[0].clone(), SymOperand::Ready(Operand::None)),
        // One-operand destination forms.
        (Not | Neg | Tst | Extb2, 1) => (SymOperand::Ready(Operand::None), parsed[0].clone()),
        // Branches and jsr take a target as destination.
        (Jsr, 1) => (SymOperand::Ready(Operand::None), parsed[0].clone()),
        (o, 1) if o.is_branch() => (SymOperand::Ready(Operand::None), parsed[0].clone()),
        // Two-operand source, destination forms.
        (
            Move | Lea | Add | Sub | Muls | Divs | And | Or | Eor | Lsl | Lsr | Asr | Cmp | Mac2
            | Bfextu2,
            2,
        ) => (parsed[0].clone(), parsed[1].clone()),
        (o, n) => {
            return err(
                line,
                format!("`{}` does not take {n} operand(s)", o.mnemonic()),
            )
        }
    };
    Ok(Item::Instr {
        line,
        op,
        size,
        src,
        dst,
    })
}

/// Splits an operand list on commas that are not inside parentheses or
/// character literals.
fn split_operands(s: &str) -> Vec<String> {
    let s = s.trim();
    if s.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_char = false;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '\'' => {
                in_char = !in_char;
                cur.push(c);
            }
            '(' if !in_char => {
                depth += 1;
                cur.push(c);
            }
            ')' if !in_char => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 && !in_char => {
                out.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Parses `symbol`, `symbol+n`, `symbol-n`, or a plain integer.
fn parse_sym_expr(s: &str) -> Option<(Option<String>, i64)> {
    let s = s.trim();
    if let Some(v) = parse_int(s) {
        return Some((None, v));
    }
    // Find a top-level + or - after the first character.
    for (i, c) in s.char_indices().skip(1) {
        if c == '+' || c == '-' {
            let name = s[..i].trim();
            if !is_ident(name) {
                return None;
            }
            let off = parse_int(&s[i..])?;
            return Some((Some(name.to_string()), off));
        }
    }
    if is_ident(s) {
        return Some((Some(s.to_string()), 0));
    }
    None
}

fn reg_of(s: &str) -> Option<(bool, u8)> {
    // Returns (is_addr_reg, number).
    let s = s.trim();
    if s.eq_ignore_ascii_case("sp") {
        return Some((true, 7));
    }
    let mut chars = s.chars();
    let kind = chars.next()?;
    let rest: String = chars.collect();
    let n: u8 = rest.parse().ok()?;
    if n > 7 {
        return None;
    }
    match kind {
        'd' | 'D' => Some((false, n)),
        'a' | 'A' => Some((true, n)),
        _ => None,
    }
}

fn parse_operand(s: &str, line: usize) -> Result<SymOperand, AsmError> {
    let s = s.trim();
    if let Some(imm) = s.strip_prefix('#') {
        return match parse_sym_expr(imm) {
            Some((None, v)) => Ok(SymOperand::Ready(Operand::Imm(v as u32))),
            Some((Some(name), off)) => Ok(SymOperand::ImmSym(name, off)),
            None => err(line, format!("bad immediate `{s}`")),
        };
    }
    if let Some((is_a, r)) = reg_of(s) {
        return Ok(SymOperand::Ready(if is_a {
            Operand::AReg(r)
        } else {
            Operand::DReg(r)
        }));
    }
    if let Some(body) = s.strip_prefix("-(") {
        let body = body.strip_suffix(')').ok_or_else(|| AsmError {
            line,
            message: format!("bad operand `{s}`"),
        })?;
        return match reg_of(body) {
            Some((true, r)) => Ok(SymOperand::Ready(Operand::PreDec(r))),
            _ => err(
                line,
                format!("pre-decrement needs an address register: `{s}`"),
            ),
        };
    }
    if let Some(body) = s.strip_suffix(")+") {
        let body = body.strip_prefix('(').ok_or_else(|| AsmError {
            line,
            message: format!("bad operand `{s}`"),
        })?;
        return match reg_of(body) {
            Some((true, r)) => Ok(SymOperand::Ready(Operand::PostInc(r))),
            _ => err(
                line,
                format!("post-increment needs an address register: `{s}`"),
            ),
        };
    }
    if s.ends_with(')') {
        let open = s.rfind('(').ok_or_else(|| AsmError {
            line,
            message: format!("bad operand `{s}`"),
        })?;
        let inner = &s[open + 1..s.len() - 1];
        let prefix = s[..open].trim();
        let r = match reg_of(inner) {
            Some((true, r)) => r,
            _ => {
                return err(
                    line,
                    format!("indirection needs an address register: `{s}`"),
                );
            }
        };
        if prefix.is_empty() {
            return Ok(SymOperand::Ready(Operand::Ind(r)));
        }
        return match parse_sym_expr(prefix) {
            Some((None, v)) => Ok(SymOperand::Ready(Operand::IndDisp(r, v as i32))),
            Some((Some(name), off)) => Ok(SymOperand::DispSym(name, off, r)),
            None => err(line, format!("bad displacement `{prefix}`")),
        };
    }
    // Bare symbol or number: absolute address.
    match parse_sym_expr(s) {
        Some((None, v)) => Ok(SymOperand::Ready(Operand::Abs(v as u32))),
        Some((Some(name), off)) => Ok(SymOperand::AbsSym(name, off)),
        None => err(line, format!("bad operand `{s}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{Cpu, StepEvent};
    use crate::mem::MemoryLayout;

    fn run_to_trap(obj: &Object, max: usize) -> Cpu {
        let mut mem = obj.to_memory();
        let mut cpu = Cpu::at_entry(obj.entry);
        for _ in 0..max {
            match cpu.step(&mut mem, IsaLevel::Isa2) {
                StepEvent::Executed { .. } => {}
                StepEvent::Trap { .. } => return cpu,
                StepEvent::Faulted(f) => panic!("fault: {f:?} at pc={:#x}", cpu.pc),
            }
        }
        panic!("did not reach trap in {max} steps");
    }

    #[test]
    fn assemble_and_run_counting_loop() {
        let obj = assemble(
            r"
            | Count to 10 in d1, sum in d2.
            start:  move.l  #0, d1
            loop:   add.l   #1, d1
                    add.l   d1, d2
                    cmp.l   #10, d1
                    blt     loop
                    trap    #0
            ",
        )
        .expect("assemble");
        let cpu = run_to_trap(&obj, 200);
        assert_eq!(cpu.d[1], 10);
        assert_eq!(cpu.d[2], 55);
    }

    #[test]
    fn data_section_symbols_resolve() {
        let obj = assemble(
            r#"
            start:  move.l  counter, d0
                    add.l   #1, d0
                    move.l  d0, counter
                    lea     msg, a0
                    move.b  (a0), d3
                    trap    #0
                    .data
            counter:.long   41
            msg:    .asciz  "Zebra"
            "#,
        )
        .expect("assemble");
        let cpu = run_to_trap(&obj, 50);
        assert_eq!(cpu.d[0], 42);
        assert_eq!(cpu.d[3] & 0xff, b'Z' as u32);
        let counter_addr = obj.symbol("counter").unwrap();
        assert!(counter_addr >= obj.data_base());
    }

    #[test]
    fn bss_reserves_zeroed_space() {
        let obj = assemble(
            r"
            start:  lea     buf, a1
                    move.l  (a1), d0
                    trap    #0
                    .bss
            buf:    .space  64
            ",
        )
        .expect("assemble");
        assert_eq!(obj.bss_len, 64);
        let cpu = run_to_trap(&obj, 10);
        assert_eq!(cpu.d[0], 0);
    }

    #[test]
    fn equ_and_char_literals() {
        let obj = assemble(
            r"
                    .equ    EXIT, 1
            start:  move.l  #EXIT, d0
                    move.b  #'A', d1
                    move.b  #'\n', d2
                    trap    #0
            ",
        )
        .expect("assemble");
        let cpu = run_to_trap(&obj, 10);
        assert_eq!(cpu.d[0], 1);
        assert_eq!(cpu.d[1] & 0xff, b'A' as u32);
        assert_eq!(cpu.d[2] & 0xff, b'\n' as u32);
    }

    #[test]
    fn addressing_modes_parse() {
        let obj = assemble(
            r"
            start:  lea     table, a0
                    move.l  #1, (a0)
                    move.l  #2, 4(a0)
                    move.l  (a0)+, d0
                    move.l  (a0), d1
                    move.l  d0, -(sp)
                    move.l  (sp)+, d2
                    trap    #0
                    .data
            table:  .space  16
            ",
        )
        .expect("assemble");
        let cpu = run_to_trap(&obj, 20);
        assert_eq!(cpu.d[0], 1);
        assert_eq!(cpu.d[1], 2);
        assert_eq!(cpu.d[2], 1);
        assert_eq!(cpu.sp(), MemoryLayout::STACK_TOP);
    }

    #[test]
    fn isa2_source_marks_required_level() {
        let obj = assemble("start: extb2 d0\n trap #0\n").unwrap();
        assert_eq!(obj.required_isa, IsaLevel::Isa2);
        let obj1 = assemble("start: nop\n trap #0\n").unwrap();
        assert_eq!(obj1.required_isa, IsaLevel::Isa1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("start: nop\n bogus d0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = assemble(" move.l #1, d0\n bra nowhere\n trap #0\n").unwrap_err();
        assert!(e.message.contains("undefined symbol"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn unknown_section_errors_instead_of_panicking() {
        // Regression: an unknown section name (or a stray opening
        // `.section`) must come back as an AsmError with the offending
        // line, never a panic out of `assemble`.
        let e = assemble("start: nop\n .section mystery\n nop\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("mystery"), "names the section: {e}");

        let e = assemble(".section\nstart: nop\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("needs a name"), "got: {e}");

        let e = assemble(".rodata\nstart: nop\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown directive"), "got: {e}");
    }

    #[test]
    fn section_directive_is_equivalent_to_the_short_forms() {
        let via_section = assemble(
            ".section .text\nstart: move.l x, d0\n trap #0\n.section data\nx: .long 7\n",
        )
        .unwrap();
        let via_short = assemble(".text\nstart: move.l x, d0\n trap #0\n.data\nx: .long 7\n")
            .unwrap();
        assert_eq!(via_section.text, via_short.text);
        assert_eq!(via_section.data, via_short.data);
    }

    #[test]
    fn nonzero_bss_data_reports_the_offending_line() {
        // `.asciz` in .bss slips past the directive-time zero check
        // (the terminator is zero but the payload is not) and used to
        // be reported with no line context.
        let e = assemble("start: nop\n trap #0\n .bss\nmsg: .asciz \"hi\"\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains(".bss"), "got: {e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let obj =
            assemble("| leading comment\n\nstart: nop ; trailing\n trap #0 | done\n").unwrap();
        assert!(!obj.text.is_empty());
    }

    #[test]
    fn symbol_plus_offset() {
        let obj = assemble(
            r"
            start:  move.l  vec+4, d0
                    trap    #0
                    .data
            vec:    .long   10, 20, 30
            ",
        )
        .unwrap();
        let cpu = run_to_trap(&obj, 10);
        assert_eq!(cpu.d[0], 20);
    }

    #[test]
    fn jsr_with_stack_locals() {
        let obj = assemble(
            r"
            start:  move.l  #5, d1
                    jsr     double
                    trap    #0
            double: move.l  d1, -(sp)
                    add.l   d1, d1
                    move.l  (sp)+, d4
                    rts
            ",
        )
        .unwrap();
        let cpu = run_to_trap(&obj, 20);
        assert_eq!(cpu.d[1], 10);
        assert_eq!(cpu.d[4], 5);
    }
}
