//! The CPU interpreter.

use crate::encode::{decode, CodecError};
use crate::icache::{ICache, Slot};
use crate::isa::{Instr, IsaLevel, Op, Operand, Size};
use crate::mem::{Memory, MemoryLayout};

/// Condition-code bits, laid out like the 68k CCR.
pub mod ccr {
    /// Carry.
    pub const C: u16 = 0x01;
    /// Overflow.
    pub const V: u16 = 0x02;
    /// Zero.
    pub const Z: u16 = 0x04;
    /// Negative.
    pub const N: u16 = 0x08;
}

/// A memory or execution fault, mapped to a signal by the kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Access to an unmapped address (`SIGSEGV`).
    Unmapped {
        /// The faulting address.
        addr: u32,
    },
    /// Write to the read-only text segment (`SIGBUS`).
    WriteToText {
        /// The faulting address.
        addr: u32,
    },
    /// Undecodable instruction word (`SIGILL`).
    IllegalInstruction {
        /// Program counter of the bad instruction.
        pc: u32,
    },
    /// An ISA-2 instruction executed on an ISA-1 CPU (`SIGILL`) — the
    /// paper's heterogeneity limitation surfacing at run time.
    IsaViolation {
        /// Program counter of the instruction.
        pc: u32,
        /// The instruction that is not implemented at this level.
        op: Op,
    },
    /// Integer division by zero (`SIGFPE`).
    DivZero {
        /// Program counter of the divide.
        pc: u32,
    },
    /// The stack pointer left the stack region (`SIGSEGV`).
    StackOverflow {
        /// The out-of-range stack pointer.
        sp: u32,
    },
    /// Access to a resident-elsewhere page of a demand-restored image.
    /// Not a signal: the kernel parks the process and fetches the page
    /// from the source dump, then replays the instruction.
    PageAbsent {
        /// The first absent byte the access touched.
        addr: u32,
    },
}

/// The outcome of executing one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEvent {
    /// The instruction completed; `units` are simple-instruction cost
    /// units for the machine's cost model.
    Executed {
        /// Cost units consumed.
        units: u32,
    },
    /// A `TRAP #vector` executed; the program counter already points at
    /// the next instruction, so the kernel may resume after servicing it.
    Trap {
        /// The trap vector (0 is the system-call gate).
        vector: u8,
        /// Cost units consumed by the trap instruction itself.
        units: u32,
    },
    /// The instruction faulted; the program counter is left *at* the
    /// faulting instruction.
    Faulted(Fault),
}

/// The processor state: exactly what `SIGDUMP` writes into `stackXXXXX`
/// under "the contents of all the registers".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cpu {
    /// Data registers `d0..d7`.
    pub d: [u32; 8],
    /// Address registers `a0..a7`; `a[7]` is the stack pointer.
    pub a: [u32; 8],
    /// Program counter.
    pub pc: u32,
    /// Status register (condition codes in the low byte).
    pub sr: u16,
}

impl Cpu {
    /// A CPU ready to run at `entry` with an empty stack.
    pub fn at_entry(entry: u32) -> Cpu {
        let mut a = [0u32; 8];
        a[7] = MemoryLayout::STACK_TOP;
        Cpu {
            d: [0; 8],
            a,
            pc: entry,
            sr: 0,
        }
    }

    /// The stack pointer.
    pub fn sp(&self) -> u32 {
        self.a[7]
    }

    /// Flattens the registers to the 18-word dump order:
    /// `d0..d7, a0..a7, pc, sr`.
    pub fn to_regs(&self) -> [u32; 18] {
        let mut r = [0u32; 18];
        r[..8].copy_from_slice(&self.d);
        r[8..16].copy_from_slice(&self.a);
        r[16] = self.pc;
        r[17] = self.sr as u32;
        r
    }

    /// Rebuilds the CPU from the 18-word dump order.
    pub fn from_regs(regs: &[u32; 18]) -> Cpu {
        let mut c = Cpu::at_entry(0);
        c.d.copy_from_slice(&regs[..8]);
        c.a.copy_from_slice(&regs[8..16]);
        c.pc = regs[16];
        c.sr = regs[17] as u16;
        c
    }

    fn flag(&self, bit: u16) -> bool {
        self.sr & bit != 0
    }

    fn set_flag(&mut self, bit: u16, on: bool) {
        if on {
            self.sr |= bit;
        } else {
            self.sr &= !bit;
        }
    }

    fn set_nz(&mut self, value: u32, size: Size) {
        let (msb, masked) = match size {
            Size::Byte => (0x80u32, value & 0xff),
            Size::Word => (0x8000, value & 0xffff),
            Size::Long => (0x8000_0000, value),
        };
        self.set_flag(ccr::N, masked & msb != 0);
        self.set_flag(ccr::Z, masked == 0);
    }

    /// Sets all four condition codes in one status-register store: C and
    /// V as given, N and Z from `value` at `size`. Equivalent to
    /// `set_nz` + two `set_flag` calls, but the interpreter's hot arms
    /// pay one read-modify-write instead of four. Shared with the
    /// superblock executor, whose fused arms must store flags
    /// bit-identically to these.
    #[inline(always)]
    pub(crate) fn set_ccr(&mut self, c: bool, v: bool, value: u32, size: Size) {
        let (mask, msb) = size_mask(size);
        let masked = value & mask;
        let bits = (c as u16 * ccr::C)
            | (v as u16 * ccr::V)
            | if masked == 0 { ccr::Z } else { 0 }
            | if masked & msb != 0 { ccr::N } else { 0 };
        self.sr = (self.sr & !(ccr::C | ccr::V | ccr::Z | ccr::N)) | bits;
    }

    /// Computes the effective address for a memory operand, applying
    /// post-increment/pre-decrement side effects exactly once.
    #[inline(always)]
    fn effective_addr(&mut self, op: Operand, size: Size) -> Option<u32> {
        match op {
            Operand::Abs(a) => Some(a),
            Operand::Ind(r) => Some(self.a[r as usize]),
            Operand::IndDisp(r, d) => Some(self.a[r as usize].wrapping_add(d as u32)),
            Operand::PostInc(r) => {
                let addr = self.a[r as usize];
                self.a[r as usize] = addr.wrapping_add(size.bytes());
                Some(addr)
            }
            Operand::PreDec(r) => {
                let addr = self.a[r as usize].wrapping_sub(size.bytes());
                self.a[r as usize] = addr;
                Some(addr)
            }
            _ => None,
        }
    }

    fn read_sized(mem: &Memory, addr: u32, size: Size) -> Result<u32, Fault> {
        Ok(match size {
            Size::Byte => mem.read_u8(addr)? as u32,
            Size::Word => mem.read_u16(addr)? as u32,
            Size::Long => mem.read_u32(addr)?,
        })
    }

    fn write_sized(mem: &mut Memory, addr: u32, size: Size, v: u32) -> Result<(), Fault> {
        match size {
            Size::Byte => mem.write_u8(addr, v as u8),
            Size::Word => mem.write_u16(addr, v as u16),
            Size::Long => mem.write_u32(addr, v),
        }
    }

    #[inline(always)]
    fn reg_write(&mut self, op: Operand, size: Size, v: u32) {
        let slot = match op {
            Operand::DReg(r) => &mut self.d[r as usize],
            Operand::AReg(r) => &mut self.a[r as usize],
            _ => unreachable!("reg_write on non-register operand"),
        };
        *slot = match size {
            Size::Byte => (*slot & !0xff) | (v & 0xff),
            Size::Word => (*slot & !0xffff) | (v & 0xffff),
            Size::Long => v,
        };
    }

    /// Reads an operand's value; `ea` caches a precomputed effective
    /// address so read-modify-write instructions apply side effects once.
    #[inline(always)]
    fn read_operand(
        &mut self,
        mem: &Memory,
        op: Operand,
        size: Size,
        ea: Option<u32>,
    ) -> Result<u32, Fault> {
        let raw = match op {
            Operand::DReg(r) => self.d[r as usize],
            Operand::AReg(r) => self.a[r as usize],
            Operand::Imm(v) => v,
            _ => {
                let addr = ea.expect("memory operand without effective address");
                return Self::read_sized(mem, addr, size);
            }
        };
        Ok(match size {
            Size::Byte => raw & 0xff,
            Size::Word => raw & 0xffff,
            Size::Long => raw,
        })
    }

    #[inline(always)]
    fn write_operand(
        &mut self,
        mem: &mut Memory,
        op: Operand,
        size: Size,
        ea: Option<u32>,
        v: u32,
    ) -> Result<(), Fault> {
        match op {
            Operand::DReg(_) | Operand::AReg(_) => {
                self.reg_write(op, size, v);
                Ok(())
            }
            Operand::Imm(_) | Operand::None => Err(Fault::IllegalInstruction { pc: self.pc }),
            _ => {
                let addr = ea.expect("memory operand without effective address");
                Self::write_sized(mem, addr, size, v)
            }
        }
    }

    fn push_u32(&mut self, mem: &mut Memory, v: u32) -> Result<(), Fault> {
        let sp = self.a[7].wrapping_sub(4);
        let base = MemoryLayout::STACK_TOP - MemoryLayout::STACK_MAX;
        if sp < base {
            return Err(Fault::StackOverflow { sp });
        }
        mem.write_u32(sp, v)?;
        self.a[7] = sp;
        Ok(())
    }

    fn pop_u32(&mut self, mem: &Memory) -> Result<u32, Fault> {
        let v = mem.read_u32(self.a[7])?;
        self.a[7] = self.a[7].wrapping_add(4);
        Ok(v)
    }

    pub(crate) fn branch_taken(&self, op: Op) -> bool {
        let n = self.flag(ccr::N);
        let z = self.flag(ccr::Z);
        let v = self.flag(ccr::V);
        let c = self.flag(ccr::C);
        match op {
            Op::Bra => true,
            Op::Beq => z,
            Op::Bne => !z,
            Op::Blt => n != v,
            Op::Ble => z || (n != v),
            Op::Bgt => !z && (n == v),
            Op::Bge => n == v,
            Op::Bcs => c,
            Op::Bcc => !c,
            Op::Bmi => n,
            Op::Bpl => !n,
            _ => unreachable!("branch_taken on non-branch"),
        }
    }

    /// Executes one instruction under the given ISA level.
    pub fn step(&mut self, mem: &mut Memory, level: IsaLevel) -> StepEvent {
        // Fetch up to 12 bytes (the maximum instruction length); an
        // instruction can end exactly at the end of its segment.
        let window = match mem.read_window(self.pc, 12) {
            Ok(w) => w,
            Err(f) => return StepEvent::Faulted(f),
        };
        let (instr, ilen) = match decode(window) {
            Ok(x) => x,
            Err(CodecError::BadOpcode(_)) | Err(CodecError::BadMode(_)) => {
                return StepEvent::Faulted(Fault::IllegalInstruction { pc: self.pc })
            }
            Err(CodecError::Truncated) => {
                return StepEvent::Faulted(Fault::Unmapped { addr: self.pc })
            }
        };
        if !level.supports(instr.op.required_level()) {
            return StepEvent::Faulted(Fault::IsaViolation {
                pc: self.pc,
                op: instr.op,
            });
        }
        let next_pc = self.pc.wrapping_add(ilen);
        let units = instr.cost_units();
        match self.execute(mem, &instr, next_pc) {
            Ok(Flow::Next) => {
                self.pc = next_pc;
                StepEvent::Executed { units }
            }
            Ok(Flow::Jump(target)) => {
                self.pc = target;
                StepEvent::Executed { units }
            }
            Ok(Flow::Trap(vector)) => {
                self.pc = next_pc;
                StepEvent::Trap { vector, units }
            }
            Err(f) => StepEvent::Faulted(f),
        }
    }

    /// Executes one instruction through a predecoded text cache.
    ///
    /// Behaviourally identical to [`Cpu::step`] at the cache's ISA level
    /// (see `icache::tests`): cache slots reproduce the decode faults
    /// and the per-instruction `cost_units()` exactly, and a PC outside
    /// cacheable text (unaligned, or code running from data/stack)
    /// falls back to the live decoder. The ISA level travels with the
    /// cache — validation already happened at build time — which keeps
    /// the two from disagreeing.
    pub fn step_cached(&mut self, mem: &mut Memory, icache: &ICache) -> StepEvent {
        match icache.lookup(self.pc) {
            Some(Slot::Instr { instr, ilen, units }) => {
                let (ilen, units) = (*ilen, *units);
                let next_pc = self.pc.wrapping_add(ilen);
                match self.execute(mem, instr, next_pc) {
                    Ok(Flow::Next) => {
                        self.pc = next_pc;
                        StepEvent::Executed { units }
                    }
                    Ok(Flow::Jump(target)) => {
                        self.pc = target;
                        StepEvent::Executed { units }
                    }
                    Ok(Flow::Trap(vector)) => {
                        self.pc = next_pc;
                        StepEvent::Trap { vector, units }
                    }
                    Err(f) => StepEvent::Faulted(f),
                }
            }
            Some(Slot::Illegal) => StepEvent::Faulted(Fault::IllegalInstruction { pc: self.pc }),
            Some(Slot::Truncated) => StepEvent::Faulted(Fault::Unmapped { addr: self.pc }),
            Some(&Slot::IsaViolation(op)) => {
                StepEvent::Faulted(Fault::IsaViolation { pc: self.pc, op })
            }
            None => self.step(mem, icache.level()),
        }
    }

    /// The single execution engine behind `step`, `step_cached` and the
    /// superblock generic path: `self.pc` must point at the instruction
    /// (faults report it; `jsr` pushes `next_pc`), and the caller
    /// advances `pc` from the returned [`Flow`].
    #[inline]
    pub(crate) fn execute(&mut self, mem: &mut Memory, i: &Instr, next_pc: u32) -> Result<Flow, Fault> {
        let size = i.size;
        let src_ea = self.effective_addr(i.src, size);
        let dst_ea = self.effective_addr(i.dst, size);
        match i.op {
            Op::Nop => Ok(Flow::Next),
            Op::Move => {
                let v = self.read_operand(mem, i.src, size, src_ea)?;
                self.write_operand(mem, i.dst, size, dst_ea, v)?;
                self.set_ccr(false, false, v, size);
                Ok(Flow::Next)
            }
            Op::Lea => {
                let addr = match i.src {
                    Operand::Abs(a) => a,
                    _ => src_ea.ok_or(Fault::IllegalInstruction { pc: self.pc })?,
                };
                match i.dst {
                    Operand::AReg(r) => self.a[r as usize] = addr,
                    Operand::DReg(r) => self.d[r as usize] = addr,
                    _ => return Err(Fault::IllegalInstruction { pc: self.pc }),
                }
                Ok(Flow::Next)
            }
            Op::Add | Op::Sub | Op::Cmp => {
                let s = self.read_operand(mem, i.src, size, src_ea)?;
                let d = self.read_operand(mem, i.dst, size, dst_ea)?;
                let (mask, msb) = size_mask(size);
                let (s, d) = (s & mask, d & mask);
                let result = if i.op == Op::Add {
                    d.wrapping_add(s)
                } else {
                    d.wrapping_sub(s)
                } & mask;
                let (c, v) = if i.op == Op::Add {
                    (
                        (d as u64 + s as u64) > mask as u64,
                        ((d ^ result) & (s ^ result) & msb) != 0,
                    )
                } else {
                    (s > d, ((d ^ s) & (d ^ result) & msb) != 0)
                };
                self.set_ccr(c, v, result, size);
                if i.op != Op::Cmp {
                    self.write_operand(mem, i.dst, size, dst_ea, result)?;
                }
                Ok(Flow::Next)
            }
            Op::Muls => {
                let s = self.read_operand(mem, i.src, size, src_ea)? as i32;
                let d = self.read_operand(mem, i.dst, size, dst_ea)? as i32;
                let r = d.wrapping_mul(s) as u32;
                self.set_ccr(false, false, r, Size::Long);
                self.write_operand(mem, i.dst, Size::Long, dst_ea, r)?;
                Ok(Flow::Next)
            }
            Op::Divs => {
                let s = self.read_operand(mem, i.src, size, src_ea)? as i32;
                if s == 0 {
                    return Err(Fault::DivZero { pc: self.pc });
                }
                let d = self.read_operand(mem, i.dst, size, dst_ea)? as i32;
                let r = d.wrapping_div(s) as u32;
                self.set_ccr(false, false, r, Size::Long);
                self.write_operand(mem, i.dst, Size::Long, dst_ea, r)?;
                Ok(Flow::Next)
            }
            Op::And | Op::Or | Op::Eor => {
                let s = self.read_operand(mem, i.src, size, src_ea)?;
                let d = self.read_operand(mem, i.dst, size, dst_ea)?;
                let r = match i.op {
                    Op::And => d & s,
                    Op::Or => d | s,
                    _ => d ^ s,
                };
                self.set_ccr(false, false, r, size);
                self.write_operand(mem, i.dst, size, dst_ea, r)?;
                Ok(Flow::Next)
            }
            Op::Not | Op::Neg => {
                let d = self.read_operand(mem, i.dst, size, dst_ea)?;
                let (mask, _) = size_mask(size);
                let r = if i.op == Op::Not {
                    !d & mask
                } else {
                    d.wrapping_neg() & mask
                };
                self.set_ccr(i.op == Op::Neg && r != 0, false, r, size);
                self.write_operand(mem, i.dst, size, dst_ea, r)?;
                Ok(Flow::Next)
            }
            Op::Lsl | Op::Lsr | Op::Asr => {
                let count = self.read_operand(mem, i.src, size, src_ea)? & 63;
                let d = self.read_operand(mem, i.dst, size, dst_ea)?;
                let (mask, _) = size_mask(size);
                let d = d & mask;
                let (r, c) = if count == 0 {
                    (d, false)
                } else if count >= 32 {
                    let c = match i.op {
                        Op::Asr => (d as i32) < 0,
                        _ => false,
                    };
                    let r = if i.op == Op::Asr && (d as i32) < 0 {
                        mask
                    } else {
                        0
                    };
                    (r, c)
                } else {
                    match i.op {
                        Op::Lsl => {
                            let c = (d >> (bits_of(size) as u32 - count.min(bits_of(size) as u32)))
                                & 1
                                != 0;
                            (
                                d.wrapping_shl(count) & mask,
                                c && count <= bits_of(size) as u32,
                            )
                        }
                        Op::Lsr => (d >> count, (d >> (count - 1)) & 1 != 0),
                        _ => {
                            let c = (d >> (count - 1)) & 1 != 0;
                            let sd = sign_extend(d, size);
                            (((sd >> count) as u32) & mask, c)
                        }
                    }
                };
                self.set_ccr(c, false, r, size);
                self.write_operand(mem, i.dst, size, dst_ea, r)?;
                Ok(Flow::Next)
            }
            Op::Tst => {
                let d = self.read_operand(mem, i.dst, size, dst_ea)?;
                self.set_ccr(false, false, d, size);
                Ok(Flow::Next)
            }
            op if op.is_branch() => {
                let target = match i.dst {
                    Operand::Abs(t) => t,
                    _ => return Err(Fault::IllegalInstruction { pc: self.pc }),
                };
                if self.branch_taken(op) {
                    Ok(Flow::Jump(target))
                } else {
                    Ok(Flow::Next)
                }
            }
            Op::Jsr => {
                let target = match i.dst {
                    Operand::Abs(t) => t,
                    _ => dst_ea.ok_or(Fault::IllegalInstruction { pc: self.pc })?,
                };
                self.push_u32(mem, next_pc)?;
                Ok(Flow::Jump(target))
            }
            Op::Rts => {
                let ret = self.pop_u32(mem)?;
                Ok(Flow::Jump(ret))
            }
            Op::Trap => {
                let vector = match i.src {
                    Operand::Imm(v) => v as u8,
                    _ => return Err(Fault::IllegalInstruction { pc: self.pc }),
                };
                Ok(Flow::Trap(vector))
            }
            Op::Mac2 => {
                // dst += src * d0 (a tiny "multiply-accumulate" that only
                // exists so ISA-2 binaries genuinely differ).
                let s = self.read_operand(mem, i.src, Size::Long, src_ea)? as i32;
                let d = self.read_operand(mem, i.dst, Size::Long, dst_ea)? as i32;
                let r = d.wrapping_add(s.wrapping_mul(self.d[0] as i32)) as u32;
                self.set_nz(r, Size::Long);
                self.write_operand(mem, i.dst, Size::Long, dst_ea, r)?;
                Ok(Flow::Next)
            }
            Op::Bfextu2 => {
                // dst = (dst >> imm.low8) masked to imm.high8 bits.
                let spec = self.read_operand(mem, i.src, Size::Long, src_ea)?;
                let shift = spec & 0xff;
                let width = ((spec >> 8) & 0xff).min(32);
                let d = self.read_operand(mem, i.dst, Size::Long, dst_ea)?;
                let mask = if width >= 32 {
                    u32::MAX
                } else {
                    (1u32 << width) - 1
                };
                let r = (d >> shift.min(31)) & mask;
                self.set_nz(r, Size::Long);
                self.write_operand(mem, i.dst, Size::Long, dst_ea, r)?;
                Ok(Flow::Next)
            }
            Op::Extb2 => {
                let d = self.read_operand(mem, i.dst, Size::Long, dst_ea)?;
                let r = d as u8 as i8 as i32 as u32;
                self.set_nz(r, Size::Long);
                self.write_operand(mem, i.dst, Size::Long, dst_ea, r)?;
                Ok(Flow::Next)
            }
            _ => Err(Fault::IllegalInstruction { pc: self.pc }),
        }
    }
}

/// Control-flow outcome of [`Cpu::execute`].
pub(crate) enum Flow {
    Next,
    Jump(u32),
    Trap(u8),
}

fn size_mask(size: Size) -> (u32, u32) {
    match size {
        Size::Byte => (0xff, 0x80),
        Size::Word => (0xffff, 0x8000),
        Size::Long => (u32::MAX, 0x8000_0000),
    }
}

fn bits_of(size: Size) -> u8 {
    match size {
        Size::Byte => 8,
        Size::Word => 16,
        Size::Long => 32,
    }
}

fn sign_extend(v: u32, size: Size) -> i32 {
    match size {
        Size::Byte => v as u8 as i8 as i32,
        Size::Word => v as u16 as i16 as i32,
        Size::Long => v as i32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_all;
    use crate::isa::Operand::*;

    /// Runs instructions until a trap, fault or `max` steps.
    fn run(instrs: &[Instr], level: IsaLevel, max: usize) -> (Cpu, Memory, StepEvent) {
        let text = encode_all(instrs);
        let mut mem = Memory::new(text, vec![0; 256], 256);
        let mut cpu = Cpu::at_entry(MemoryLayout::TEXT_BASE);
        let mut last = StepEvent::Executed { units: 0 };
        for _ in 0..max {
            last = cpu.step(&mut mem, level);
            match last {
                StepEvent::Executed { .. } => continue,
                _ => break,
            }
        }
        (cpu, mem, last)
    }

    #[test]
    fn move_and_add_loop() {
        // d1 = 0; loop 10 times adding 3.
        let text_base = MemoryLayout::TEXT_BASE;
        let i0 = Instr::new(Op::Move, Size::Long, Imm(0), DReg(1)); // 8 bytes
        let i1 = Instr::new(Op::Move, Size::Long, Imm(0), DReg(2)); // 8 bytes
        let loop_pc = text_base + 16;
        let instrs = vec![
            i0,
            i1,
            Instr::new(Op::Add, Size::Long, Imm(3), DReg(1)),
            Instr::new(Op::Add, Size::Long, Imm(1), DReg(2)),
            Instr::new(Op::Cmp, Size::Long, Imm(10), DReg(2)),
            Instr::new(Op::Blt, Size::Long, None, Abs(loop_pc)),
            Instr::new(Op::Trap, Size::Long, Imm(0), None),
        ];
        let (cpu, _, ev) = run(&instrs, IsaLevel::Isa1, 1000);
        assert!(matches!(ev, StepEvent::Trap { vector: 0, .. }));
        assert_eq!(cpu.d[1], 30);
        assert_eq!(cpu.d[2], 10);
    }

    #[test]
    fn memory_counter_in_data_segment() {
        let data_base = MemoryLayout::data_base(3 * 12); // Computed below.
        let instrs = vec![
            Instr::new(Op::Add, Size::Long, Imm(1), Abs(data_base)),
            Instr::new(Op::Add, Size::Long, Imm(1), Abs(data_base)),
            Instr::new(Op::Trap, Size::Long, Imm(0), None),
        ];
        // Each Add Imm,Abs is 12 bytes; trap is 8; text = 32 < 0x2000 so
        // data_base is 0x2000 regardless.
        assert_eq!(data_base, 0x2000);
        let (_, mem, ev) = run(&instrs, IsaLevel::Isa1, 10);
        assert!(matches!(ev, StepEvent::Trap { .. }));
        assert_eq!(mem.read_u32(data_base).unwrap(), 2);
    }

    #[test]
    fn jsr_rts_round_trip() {
        let text_base = MemoryLayout::TEXT_BASE;
        // 0: jsr sub(=16); 8: trap; 16: move #7,d3; rts
        let sub = text_base + 16;
        let instrs = vec![
            Instr::new(Op::Jsr, Size::Long, None, Abs(sub)),
            Instr::new(Op::Trap, Size::Long, Imm(0), None),
            Instr::new(Op::Move, Size::Long, Imm(7), DReg(3)),
            Instr::new(Op::Rts, Size::Long, None, None),
        ];
        let (cpu, _, ev) = run(&instrs, IsaLevel::Isa1, 10);
        assert!(matches!(ev, StepEvent::Trap { .. }));
        assert_eq!(cpu.d[3], 7);
        assert_eq!(cpu.sp(), MemoryLayout::STACK_TOP); // Balanced stack.
    }

    #[test]
    fn push_pop_via_predec_postinc() {
        let instrs = vec![
            Instr::new(Op::Move, Size::Long, Imm(0x1234), PreDec(7)),
            Instr::new(Op::Move, Size::Long, PostInc(7), DReg(5)),
            Instr::new(Op::Trap, Size::Long, Imm(0), None),
        ];
        let (cpu, _, _) = run(&instrs, IsaLevel::Isa1, 10);
        assert_eq!(cpu.d[5], 0x1234);
        assert_eq!(cpu.sp(), MemoryLayout::STACK_TOP);
    }

    #[test]
    fn isa2_instruction_faults_on_isa1() {
        let instrs = vec![Instr::new(Op::Extb2, Size::Long, None, DReg(0))];
        let (_, _, ev) = run(&instrs, IsaLevel::Isa1, 2);
        assert!(matches!(
            ev,
            StepEvent::Faulted(Fault::IsaViolation { op: Op::Extb2, .. })
        ));
        // And it executes fine at Isa2:
        let instrs2 = vec![
            Instr::new(Op::Move, Size::Long, Imm(0xff), DReg(0)),
            Instr::new(Op::Extb2, Size::Long, None, DReg(0)),
            Instr::new(Op::Trap, Size::Long, Imm(0), None),
        ];
        let (cpu, _, ev2) = run(&instrs2, IsaLevel::Isa2, 5);
        assert!(matches!(ev2, StepEvent::Trap { .. }));
        assert_eq!(cpu.d[0], 0xffff_ffff); // Sign-extended.
    }

    #[test]
    fn div_by_zero_faults() {
        let instrs = vec![
            Instr::new(Op::Move, Size::Long, Imm(0), DReg(1)),
            Instr::new(Op::Divs, Size::Long, DReg(1), DReg(2)),
        ];
        let (_, _, ev) = run(&instrs, IsaLevel::Isa1, 5);
        assert!(matches!(ev, StepEvent::Faulted(Fault::DivZero { .. })));
    }

    #[test]
    fn null_deref_faults() {
        let instrs = vec![Instr::new(Op::Move, Size::Long, Abs(0), DReg(0))];
        let (_, _, ev) = run(&instrs, IsaLevel::Isa1, 2);
        assert!(matches!(ev, StepEvent::Faulted(Fault::Unmapped { .. })));
    }

    #[test]
    fn write_to_text_faults() {
        let instrs = vec![Instr::new(
            Op::Move,
            Size::Long,
            Imm(1),
            Abs(MemoryLayout::TEXT_BASE),
        )];
        let (_, _, ev) = run(&instrs, IsaLevel::Isa1, 2);
        assert!(matches!(ev, StepEvent::Faulted(Fault::WriteToText { .. })));
    }

    #[test]
    fn signed_compare_flags() {
        // -1 < 1 signed.
        let instrs = vec![
            Instr::new(Op::Move, Size::Long, Imm(-1i32 as u32), DReg(0)),
            Instr::new(Op::Cmp, Size::Long, Imm(1), DReg(0)),
            Instr::new(Op::Blt, Size::Long, None, Abs(MemoryLayout::TEXT_BASE + 32)),
            Instr::new(Op::Trap, Size::Long, Imm(0), None), // Not reached.
            Instr::new(Op::Move, Size::Long, Imm(42), DReg(6)),
            Instr::new(Op::Trap, Size::Long, Imm(0), None),
        ];
        let (cpu, _, _) = run(&instrs, IsaLevel::Isa1, 10);
        assert_eq!(cpu.d[6], 42);
    }

    #[test]
    fn register_state_round_trips_through_dump_order() {
        let mut cpu = Cpu::at_entry(0x1234);
        cpu.d = [1, 2, 3, 4, 5, 6, 7, 8];
        cpu.a = [9, 10, 11, 12, 13, 14, 15, 16];
        cpu.sr = 0x0F;
        let regs = cpu.to_regs();
        let back = Cpu::from_regs(&regs);
        assert_eq!(cpu, back);
    }

    #[test]
    fn byte_move_preserves_upper_register_bits() {
        let instrs = vec![
            Instr::new(Op::Move, Size::Long, Imm(0xAABBCCDD), DReg(0)),
            Instr::new(Op::Move, Size::Byte, Imm(0x11), DReg(0)),
            Instr::new(Op::Trap, Size::Long, Imm(0), None),
        ];
        let (cpu, _, _) = run(&instrs, IsaLevel::Isa1, 5);
        assert_eq!(cpu.d[0], 0xAABBCC11);
    }

    #[test]
    fn stack_overflow_detected_on_jsr() {
        let mut cpu = Cpu::at_entry(MemoryLayout::TEXT_BASE);
        cpu.a[7] = MemoryLayout::STACK_TOP - MemoryLayout::STACK_MAX + 2;
        let text = encode_all(&[Instr::new(
            Op::Jsr,
            Size::Long,
            None,
            Abs(MemoryLayout::TEXT_BASE),
        )]);
        let mut mem = Memory::new(text, vec![], 0);
        let ev = cpu.step(&mut mem, IsaLevel::Isa1);
        assert!(matches!(
            ev,
            StepEvent::Faulted(Fault::StackOverflow { .. })
        ));
    }
}
