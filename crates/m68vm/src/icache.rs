//! Per-text-segment predecoded instruction cache.
//!
//! Text is write-protected ([`Fault::WriteToText`]), so its decode work
//! can be done exactly once — at `a.out` load, `execve()` or
//! `rest_proc()` restore — instead of on every executed instruction.
//! Every instruction length is a multiple of four bytes and text starts
//! at the 4-aligned [`MemoryLayout::TEXT_BASE`], so the cache holds one
//! slot per four bytes of text, indexed directly by `(pc - TEXT_BASE) / 4`.
//! Decoding at *every* 4-byte offset (not just instruction starts
//! reachable from the entry point) means a jump into the middle of an
//! encoded instruction behaves bit-identically to the live decoder.
//!
//! The ISA-level check normally performed per step is also folded into
//! the build: a slot holding an instruction above the cache's level
//! becomes [`Slot::IsaViolation`] up front. A cache is therefore only
//! valid for one `(text, IsaLevel)` pair; the kernel rebuilds it
//! whenever either changes (exec, restore, migration to a different
//! machine model).
//!
//! This is purely a host-side optimisation: the cached path charges the
//! same `cost_units()` per instruction as the decoding path, so
//! simulated time is unchanged.

use crate::encode::{decode, CodecError};
use crate::isa::{Instr, IsaLevel, Op};
use crate::mem::MemoryLayout;
use crate::superblock::{SbCache, SbEntry, SuperBlock};

/// Maximum encoded instruction length (base word + two extensions).
const MAX_ILEN: usize = 12;

/// The predecoded outcome of fetching at one 4-byte text offset.
///
/// The non-`Instr` variants reproduce the exact fault the live decode
/// path would raise, so cached and uncached execution are
/// indistinguishable to the kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// A decodable instruction supported at the cache's ISA level.
    Instr {
        instr: Instr,
        /// Encoded length in bytes; the fall-through PC is `pc + ilen`.
        ilen: u32,
        /// `instr.cost_units()`, precomputed for the charging loop.
        units: u32,
    },
    /// Undecodable bytes (`Fault::IllegalInstruction`).
    Illegal,
    /// The instruction runs off the end of text (`Fault::Unmapped`).
    Truncated,
    /// Decodable, but above the cache's ISA level (`Fault::IsaViolation`).
    IsaViolation(Op),
}

/// A predecoded text segment for one ISA level.
///
/// Also owns the lazily translated superblock cache
/// ([`crate::superblock`]): blocks are derived purely from the slots,
/// so sharing them through the same `Arc` and rebuilding them whenever
/// the icache is rebuilt keeps the two coherent by construction.
pub struct ICache {
    level: IsaLevel,
    text_len: u32,
    slots: Vec<Slot>,
    /// Superblock translations, built on first execution of each
    /// block-head slot. Pure cache: never cloned, never compared,
    /// never dumped.
    sb: SbCache,
}

impl Clone for ICache {
    /// Clones the predecoded slots with a *cold* superblock cache —
    /// translation state is pure cache, so a clone re-translating
    /// lazily is indistinguishable from one that inherited the blocks.
    fn clone(&self) -> ICache {
        ICache {
            level: self.level,
            text_len: self.text_len,
            slots: self.slots.clone(),
            sb: SbCache::new(self.slots.len()),
        }
    }
}

impl std::fmt::Debug for ICache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ICache")
            .field("level", &self.level)
            .field("text_len", &self.text_len)
            .field("slots", &self.slots.len())
            .field("translated_blocks", &self.sb.translated())
            .finish()
    }
}

impl ICache {
    /// Decodes an entire text segment for execution at `level`.
    pub fn build(text: &[u8], level: IsaLevel) -> ICache {
        let mut slots = Vec::with_capacity(text.len().div_ceil(4));
        for off in (0..text.len()).step_by(4) {
            let window = &text[off..(off + MAX_ILEN).min(text.len())];
            let slot = match decode(window) {
                Ok((instr, ilen)) => {
                    if level.supports(instr.op.required_level()) {
                        Slot::Instr {
                            instr,
                            ilen,
                            units: instr.cost_units(),
                        }
                    } else {
                        Slot::IsaViolation(instr.op)
                    }
                }
                Err(CodecError::BadOpcode(_)) | Err(CodecError::BadMode(_)) => Slot::Illegal,
                Err(CodecError::Truncated) => Slot::Truncated,
            };
            slots.push(slot);
        }
        let sb = SbCache::new(slots.len());
        ICache {
            level,
            text_len: text.len() as u32,
            slots,
            sb,
        }
    }

    /// The ISA level the cache was validated against (used by the
    /// uncached fallback path so both paths enforce the same level).
    pub fn level(&self) -> IsaLevel {
        self.level
    }

    /// Bytes of text covered by the cache.
    pub fn text_len(&self) -> u32 {
        self.text_len
    }

    /// The slot for `pc`, or `None` when `pc` is unaligned or outside
    /// text (code executing from data/stack falls back to live decode).
    #[inline]
    pub fn lookup(&self, pc: u32) -> Option<&Slot> {
        // An unsigned wrap for pc < TEXT_BASE lands far beyond text_len.
        let off = pc.wrapping_sub(MemoryLayout::TEXT_BASE);
        if off & 3 != 0 || off >= self.text_len {
            return None;
        }
        Some(&self.slots[(off >> 2) as usize])
    }

    /// The superblock starting at `pc`, translating it on first use.
    /// `None` outside text or where the slot path serves better
    /// (fault slots, malformed control transfers).
    #[inline]
    pub fn superblock(&self, pc: u32) -> Option<&SuperBlock> {
        let off = pc.wrapping_sub(MemoryLayout::TEXT_BASE);
        if off & 3 != 0 || off >= self.text_len {
            return None;
        }
        match self.sb.entry((off >> 2) as usize, self, pc) {
            SbEntry::Block(b) => Some(b),
            SbEntry::Bypass => None,
        }
    }

    /// How many slots currently hold a translation (lazy-build tests).
    pub fn translated_blocks(&self) -> usize {
        self.sb.translated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::{Cpu, Fault, StepEvent};
    use crate::isa::Size;
    use crate::mem::Memory;

    const LOOP_SRC: &str = r"
        start:  move.l  #100, d6
        loop:   add.l   #1, d5
                eor.l   d5, d4
                lsr.l   #1, d4
                sub.l   #1, d6
                bgt     loop
                trap    #0
    ";

    #[test]
    fn cached_run_matches_uncached_bit_for_bit() {
        let obj = assemble(LOOP_SRC).unwrap();
        let icache = ICache::build(&obj.text, IsaLevel::Isa1);

        let mut mem_a = obj.to_memory();
        let mut cpu_a = Cpu::at_entry(obj.entry);
        let mut units_a = 0u64;
        let mut mem_b = obj.to_memory();
        let mut cpu_b = Cpu::at_entry(obj.entry);
        let mut units_b = 0u64;

        loop {
            let ea = cpu_a.step(&mut mem_a, IsaLevel::Isa1);
            let eb = cpu_b.step_cached(&mut mem_b, &icache);
            assert_eq!(ea, eb);
            match ea {
                StepEvent::Executed { units } => {
                    units_a += units as u64;
                    if let StepEvent::Executed { units } = eb {
                        units_b += units as u64;
                    }
                }
                _ => break,
            }
            assert_eq!(cpu_a, cpu_b);
        }
        assert_eq!(cpu_a, cpu_b);
        assert_eq!(units_a, units_b, "simtime charging must be identical");
    }

    #[test]
    fn every_offset_matches_live_decoder_semantics() {
        // Jumping into extension words must behave exactly like the
        // byte-window decoder; compare slot-by-slot against `step` from
        // a CPU parked at each 4-byte text offset.
        let obj = assemble(LOOP_SRC).unwrap();
        let icache = ICache::build(&obj.text, IsaLevel::Isa1);
        for off in (0..obj.text.len() as u32).step_by(4) {
            let pc = MemoryLayout::TEXT_BASE + off;
            let mut mem_a = obj.to_memory();
            let mut cpu_a = Cpu::at_entry(obj.entry);
            cpu_a.pc = pc;
            let mut mem_b = obj.to_memory();
            let mut cpu_b = cpu_a.clone();
            let ea = cpu_a.step(&mut mem_a, IsaLevel::Isa1);
            let eb = cpu_b.step_cached(&mut mem_b, &icache);
            assert_eq!(ea, eb, "divergence at text offset {off:#x}");
            assert_eq!(cpu_a, cpu_b, "state divergence at text offset {off:#x}");
        }
    }

    #[test]
    fn isa_violation_is_predecoded() {
        // bfextu2 requires ISA-2; an ISA-1 cache must fault identically
        // to the live path.
        let obj = assemble("start: bfextu2 #4, d1\n trap #0\n").unwrap();
        let icache = ICache::build(&obj.text, IsaLevel::Isa1);
        let mut mem = obj.to_memory();
        let mut cpu = Cpu::at_entry(obj.entry);
        let cached = cpu.step_cached(&mut mem, &icache);
        let mut mem2 = obj.to_memory();
        let mut cpu2 = Cpu::at_entry(obj.entry);
        let live = cpu2.step(&mut mem2, IsaLevel::Isa1);
        assert_eq!(cached, live);
        assert!(matches!(
            cached,
            StepEvent::Faulted(Fault::IsaViolation { op: Op::Bfextu2, .. })
        ));

        // The same text cached at ISA-2 executes it.
        let icache2 = ICache::build(&obj.text, IsaLevel::Isa2);
        let mut mem3 = obj.to_memory();
        let mut cpu3 = Cpu::at_entry(obj.entry);
        cpu3.d[1] = 0x1234_5678;
        assert!(matches!(
            cpu3.step_cached(&mut mem3, &icache2),
            StepEvent::Executed { .. }
        ));
    }

    #[test]
    fn illegal_and_truncated_slots_fault_like_live_decode() {
        // Text ending mid-instruction: a valid 8-byte instruction cut to
        // its base word decodes as Truncated at the segment edge.
        let instr = Instr {
            op: Op::Move,
            size: Size::Long,
            src: crate::isa::Operand::Imm(7),
            dst: crate::isa::Operand::DReg(1),
        };
        let mut truncated_text = crate::encode::encode_all(&[instr]);
        assert_eq!(truncated_text.len(), 8);
        truncated_text.truncate(4); // cut off the extension word
        // 0xFF is no opcode.
        let illegal_text = vec![0xFFu8, 0, 0, 0];

        for (text, expected) in [(truncated_text, Slot::Truncated), (illegal_text, Slot::Illegal)] {
            let icache = ICache::build(&text, IsaLevel::Isa2);
            assert_eq!(icache.lookup(MemoryLayout::TEXT_BASE), Some(&expected));
            let pc = MemoryLayout::TEXT_BASE;
            let mut mem_a = Memory::new(text.clone(), vec![0; 16], 16);
            let mut cpu_a = Cpu::at_entry(pc);
            let mut mem_b = Memory::new(text.clone(), vec![0; 16], 16);
            let mut cpu_b = Cpu::at_entry(pc);
            assert_eq!(
                cpu_a.step(&mut mem_a, IsaLevel::Isa2),
                cpu_b.step_cached(&mut mem_b, &icache),
                "divergence for {expected:?}"
            );
        }
    }

    #[test]
    fn lookup_misses_outside_text_and_unaligned() {
        let obj = assemble(LOOP_SRC).unwrap();
        let icache = ICache::build(&obj.text, IsaLevel::Isa1);
        assert!(icache.lookup(MemoryLayout::TEXT_BASE - 4).is_none());
        assert!(icache.lookup(0).is_none());
        assert!(icache.lookup(MemoryLayout::TEXT_BASE + 2).is_none());
        assert!(icache
            .lookup(MemoryLayout::TEXT_BASE + obj.text.len() as u32)
            .is_none());
        assert!(icache.lookup(MemoryLayout::data_base(obj.text.len() as u32)).is_none());
    }

    #[test]
    fn code_in_data_segment_falls_back_to_live_decode() {
        // Place a `move.l #42, d3; trap #0` image in the data segment and
        // jump there: step_cached must execute it via the fallback.
        let obj = assemble(LOOP_SRC).unwrap();
        let icache = ICache::build(&obj.text, IsaLevel::Isa1);
        let code = assemble("start: move.l #42, d3\n trap #0\n").unwrap().text;
        // Build an image whose data segment *is* the code blob.
        let mut mem = Memory::new(obj.text.clone(), code.clone(), 0);
        let data_pc = mem.data_base();
        assert_eq!(mem.read_bytes(data_pc, code.len() as u32).unwrap(), &code[..]);
        let mut cpu = Cpu::at_entry(data_pc);
        assert!(matches!(
            cpu.step_cached(&mut mem, &icache),
            StepEvent::Executed { .. }
        ));
        assert_eq!(cpu.d[3], 42);
        assert!(matches!(
            cpu.step_cached(&mut mem, &icache),
            StepEvent::Trap { vector: 0, .. }
        ));
    }
}
