//! The instruction set: operations, operands, sizes and ISA levels.

use core::fmt;

/// Operand size of a data operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Size {
    /// One byte.
    Byte,
    /// Two bytes (a 68k "word").
    Word,
    /// Four bytes (a 68k "long").
    Long,
}

impl Size {
    /// Number of bytes moved by this size.
    pub fn bytes(self) -> u32 {
        match self {
            Size::Byte => 1,
            Size::Word => 2,
            Size::Long => 4,
        }
    }

    /// The assembly suffix, e.g. `.l`.
    pub fn suffix(self) -> &'static str {
        match self {
            Size::Byte => ".b",
            Size::Word => ".w",
            Size::Long => ".l",
        }
    }
}

/// The ISA level a CPU implements (and an instruction requires).
///
/// `Isa2` (the "68020") executes everything `Isa1` (the "68010") does plus
/// the three [`Op::isa2_only`] instructions. The paper, §7: "we can migrate
/// a program from a Sun 2 ... to a Sun 3 ... which is upward-compatible
/// ..., but we cannot migrate programs in the other direction."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IsaLevel {
    /// Baseline instruction set (MC68010-like).
    Isa1,
    /// Superset instruction set (MC68020-like).
    Isa2,
}

impl IsaLevel {
    /// Can a program whose highest required level is `required` run here?
    pub fn supports(self, required: IsaLevel) -> bool {
        self >= required
    }
}

/// An operation code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// Move data from source to destination.
    Move = 1,
    /// Load effective address of source into an address register.
    Lea = 2,
    /// Add source to destination.
    Add = 3,
    /// Subtract source from destination.
    Sub = 4,
    /// Signed multiply (low 32 bits of the product).
    Muls = 5,
    /// Signed divide; destination = destination / source.
    Divs = 6,
    /// Bitwise and.
    And = 7,
    /// Bitwise or.
    Or = 8,
    /// Bitwise exclusive or.
    Eor = 9,
    /// Bitwise complement of destination.
    Not = 10,
    /// Arithmetic negation of destination.
    Neg = 11,
    /// Logical shift left destination by source.
    Lsl = 12,
    /// Logical shift right destination by source.
    Lsr = 13,
    /// Arithmetic shift right destination by source.
    Asr = 14,
    /// Compare destination with source (sets flags only).
    Cmp = 15,
    /// Test destination against zero (sets flags only).
    Tst = 16,
    /// Branch always.
    Bra = 17,
    /// Branch if equal (Z set).
    Beq = 18,
    /// Branch if not equal (Z clear).
    Bne = 19,
    /// Branch if less than (signed).
    Blt = 20,
    /// Branch if less or equal (signed).
    Ble = 21,
    /// Branch if greater than (signed).
    Bgt = 22,
    /// Branch if greater or equal (signed).
    Bge = 23,
    /// Branch if carry set (unsigned lower).
    Bcs = 24,
    /// Branch if carry clear (unsigned higher or same).
    Bcc = 25,
    /// Branch if minus (N set).
    Bmi = 26,
    /// Branch if plus (N clear).
    Bpl = 27,
    /// Jump to subroutine (pushes return address).
    Jsr = 28,
    /// Return from subroutine.
    Rts = 29,
    /// Trap into the kernel (vector in source immediate).
    Trap = 30,
    /// No operation.
    Nop = 31,
    /// ISA-2 only: 32x32-to-32 signed multiply-accumulate into destination.
    Mac2 = 32,
    /// ISA-2 only: unsigned bit-field extract: dst = (dst >> imm.lo8) &
    /// mask(imm.hi8 bits).
    Bfextu2 = 33,
    /// ISA-2 only: sign-extend the low byte of destination to 32 bits
    /// (the 68020's `EXTB.L`).
    Extb2 = 34,
}

impl Op {
    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Option<Op> {
        use Op::*;
        Some(match b {
            1 => Move,
            2 => Lea,
            3 => Add,
            4 => Sub,
            5 => Muls,
            6 => Divs,
            7 => And,
            8 => Or,
            9 => Eor,
            10 => Not,
            11 => Neg,
            12 => Lsl,
            13 => Lsr,
            14 => Asr,
            15 => Cmp,
            16 => Tst,
            17 => Bra,
            18 => Beq,
            19 => Bne,
            20 => Blt,
            21 => Ble,
            22 => Bgt,
            23 => Bge,
            24 => Bcs,
            25 => Bcc,
            26 => Bmi,
            27 => Bpl,
            28 => Jsr,
            29 => Rts,
            30 => Trap,
            31 => Nop,
            32 => Mac2,
            33 => Bfextu2,
            34 => Extb2,
            _ => return None,
        })
    }

    /// True for instructions only present at [`IsaLevel::Isa2`].
    pub fn isa2_only(self) -> bool {
        matches!(self, Op::Mac2 | Op::Bfextu2 | Op::Extb2)
    }

    /// The ISA level this instruction requires.
    pub fn required_level(self) -> IsaLevel {
        if self.isa2_only() {
            IsaLevel::Isa2
        } else {
            IsaLevel::Isa1
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Move => "move",
            Lea => "lea",
            Add => "add",
            Sub => "sub",
            Muls => "muls",
            Divs => "divs",
            And => "and",
            Or => "or",
            Eor => "eor",
            Not => "not",
            Neg => "neg",
            Lsl => "lsl",
            Lsr => "lsr",
            Asr => "asr",
            Cmp => "cmp",
            Tst => "tst",
            Bra => "bra",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Ble => "ble",
            Bgt => "bgt",
            Bge => "bge",
            Bcs => "bcs",
            Bcc => "bcc",
            Bmi => "bmi",
            Bpl => "bpl",
            Jsr => "jsr",
            Rts => "rts",
            Trap => "trap",
            Nop => "nop",
            Mac2 => "mac2",
            Bfextu2 => "bfextu2",
            Extb2 => "extb2",
        }
    }

    /// True for conditional and unconditional branches.
    pub fn is_branch(self) -> bool {
        use Op::*;
        matches!(
            self,
            Bra | Beq | Bne | Blt | Ble | Bgt | Bge | Bcs | Bcc | Bmi | Bpl
        )
    }
}

/// An instruction operand (addressing mode plus register/value).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// No operand.
    None,
    /// Data register `dN`.
    DReg(u8),
    /// Address register `aN` (`a7` is the stack pointer).
    AReg(u8),
    /// Immediate value `#v`.
    Imm(u32),
    /// Absolute address `addr`.
    Abs(u32),
    /// Register indirect `(aN)`.
    Ind(u8),
    /// Register indirect with displacement `d(aN)`.
    IndDisp(u8, i32),
    /// Register indirect with post-increment `(aN)+`.
    PostInc(u8),
    /// Register indirect with pre-decrement `-(aN)`.
    PreDec(u8),
}

impl Operand {
    /// Does this operand occupy an extension word in the encoding?
    pub fn has_ext(self) -> bool {
        matches!(
            self,
            Operand::Imm(_) | Operand::Abs(_) | Operand::IndDisp(_, _)
        )
    }

    /// Is this a memory-touching operand (costs extra cycles)?
    pub fn touches_memory(self) -> bool {
        matches!(
            self,
            Operand::Abs(_)
                | Operand::Ind(_)
                | Operand::IndDisp(_, _)
                | Operand::PostInc(_)
                | Operand::PreDec(_)
        )
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Operand::None => Ok(()),
            Operand::DReg(r) => write!(f, "d{r}"),
            Operand::AReg(7) => write!(f, "sp"),
            Operand::AReg(r) => write!(f, "a{r}"),
            Operand::Imm(v) => write!(f, "#{}", v as i32),
            Operand::Abs(v) => write!(f, "0x{v:x}"),
            Operand::Ind(r) => write!(f, "(a{r})"),
            Operand::IndDisp(r, d) => write!(f, "{d}(a{r})"),
            Operand::PostInc(r) => write!(f, "(a{r})+"),
            Operand::PreDec(r) => write!(f, "-(a{r})"),
        }
    }
}

/// A decoded instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instr {
    /// The operation.
    pub op: Op,
    /// Operand size (ignored by branches, `lea`, `trap`, ...).
    pub size: Size,
    /// Source operand.
    pub src: Operand,
    /// Destination operand.
    pub dst: Operand,
}

impl Instr {
    /// A new instruction with explicit operands.
    pub fn new(op: Op, size: Size, src: Operand, dst: Operand) -> Instr {
        Instr { op, size, src, dst }
    }

    /// Encoded length in bytes (4-byte base word plus 4 bytes per
    /// extension operand).
    pub fn encoded_len(&self) -> u32 {
        let mut n = 4;
        if self.src.has_ext() {
            n += 4;
        }
        if self.dst.has_ext() {
            n += 4;
        }
        n
    }

    /// Simple-instruction cost units: 1 for register-only work, plus one
    /// per memory-touching operand, plus extra for multiply/divide and
    /// kernel traps.
    pub fn cost_units(&self) -> u32 {
        let mut units = 1;
        if self.src.touches_memory() {
            units += 1;
        }
        if self.dst.touches_memory() {
            units += 1;
        }
        match self.op {
            Op::Muls | Op::Mac2 => units += 5,
            Op::Divs => units += 12,
            Op::Jsr | Op::Rts => units += 2,
            _ => {}
        }
        units
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op.mnemonic())?;
        let sized = !matches!(self.op, Op::Lea | Op::Rts | Op::Nop | Op::Trap | Op::Jsr)
            && !self.op.is_branch();
        if sized {
            write!(f, "{}", self.size.suffix())?;
        }
        match (self.src, self.dst) {
            (Operand::None, Operand::None) => Ok(()),
            (s, Operand::None) => write!(f, " {s}"),
            (Operand::None, d) => write!(f, " {d}"),
            (s, d) => write!(f, " {s}, {d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa2_is_superset() {
        assert!(IsaLevel::Isa2.supports(IsaLevel::Isa1));
        assert!(IsaLevel::Isa2.supports(IsaLevel::Isa2));
        assert!(!IsaLevel::Isa1.supports(IsaLevel::Isa2));
    }

    #[test]
    fn isa2_only_ops() {
        assert!(Op::Mac2.isa2_only());
        assert!(Op::Extb2.isa2_only());
        assert!(!Op::Move.isa2_only());
        assert_eq!(Op::Bfextu2.required_level(), IsaLevel::Isa2);
    }

    #[test]
    fn opcode_round_trip() {
        for b in 0..=255u8 {
            if let Some(op) = Op::from_u8(b) {
                assert_eq!(op as u8, b);
            }
        }
    }

    #[test]
    fn encoded_len_counts_ext_words() {
        let i = Instr::new(Op::Move, Size::Long, Operand::Imm(5), Operand::DReg(0));
        assert_eq!(i.encoded_len(), 8);
        let j = Instr::new(
            Op::Move,
            Size::Long,
            Operand::Abs(0x100),
            Operand::Abs(0x200),
        );
        assert_eq!(j.encoded_len(), 12);
        let k = Instr::new(Op::Rts, Size::Long, Operand::None, Operand::None);
        assert_eq!(k.encoded_len(), 4);
    }

    #[test]
    fn display_formats() {
        let i = Instr::new(Op::Move, Size::Long, Operand::Imm(5), Operand::DReg(1));
        assert_eq!(i.to_string(), "move.l #5, d1");
        let b = Instr::new(Op::Beq, Size::Long, Operand::None, Operand::Abs(0x40));
        assert_eq!(b.to_string(), "beq 0x40");
    }

    #[test]
    fn cost_units_reflect_memory_and_op() {
        let reg = Instr::new(Op::Add, Size::Long, Operand::DReg(0), Operand::DReg(1));
        assert_eq!(reg.cost_units(), 1);
        let mem = Instr::new(Op::Add, Size::Long, Operand::Ind(0), Operand::Abs(4));
        assert_eq!(mem.cost_units(), 3);
        let div = Instr::new(Op::Divs, Size::Long, Operand::DReg(0), Operand::DReg(1));
        assert!(div.cost_units() > 10);
    }
}
