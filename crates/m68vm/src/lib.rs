//! A 68k-flavoured virtual CPU, assembler and disassembler.
//!
//! The paper migrates real processes on MC68010 (Sun-2) and MC68020
//! (Sun-3) workstations. Migration transparency can only be demonstrated
//! if *actual machine state* — registers, stack, static data — is captured
//! mid-execution and resumes identically on another machine, so this crate
//! provides a small but genuine CPU:
//!
//! * big-endian memory split into text / data+bss / stack segments, like a
//!   4.2BSD process image;
//! * eight data registers `d0..d7`, eight address registers `a0..a7` (with
//!   `a7` as the stack pointer), a program counter and condition codes;
//! * a compact instruction encoding covering moves, ALU ops, compares,
//!   branches, subroutine calls and the `TRAP #0` system-call gate;
//! * two ISA levels: [`IsaLevel::Isa2`] is a strict superset of
//!   [`IsaLevel::Isa1`] (three extra instructions), reproducing the
//!   paper's §7 heterogeneity rule — a process may migrate 68010→68020
//!   but faults with an illegal-instruction trap in the other direction;
//! * a two-pass assembler and a disassembler, so guest workloads live in
//!   the repository as readable assembly sources.
//!
//! The system-call convention follows old Unix: the syscall number goes in
//! `d0`, arguments in `d1..d5`, then `TRAP #0`; on return `d0` holds the
//! result, with the carry flag set and `d0` holding the `errno` on failure.

pub mod asm;
pub mod cpu;
pub mod disasm;
pub mod encode;
pub mod icache;
pub mod isa;
pub mod mem;
pub mod object;
pub mod superblock;

pub use asm::{assemble, AsmError};
pub use cpu::{Cpu, Fault, StepEvent};
pub use icache::ICache;
pub use superblock::SbExit;
pub use disasm::disassemble_one;
pub use isa::{Instr, IsaLevel, Op, Operand, Size};
pub use mem::{Memory, MemoryLayout};
pub use object::Object;
