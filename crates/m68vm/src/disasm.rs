//! A disassembler, used by debugging tools and the `undump` inspector.

use crate::encode::{decode, CodecError};
use crate::isa::Instr;

/// Disassembles one instruction at the front of `bytes`.
///
/// Returns the rendered instruction text and the number of bytes consumed.
pub fn disassemble_one(bytes: &[u8]) -> Result<(String, u32), CodecError> {
    let (instr, n) = decode(bytes)?;
    Ok((instr.to_string(), n))
}

/// Disassembles a whole text segment, one line per instruction, with
/// addresses starting at `base`.
///
/// Decoding stops at the first undecodable word (data embedded in text)
/// and reports how far it got.
pub fn disassemble_all(bytes: &[u8], base: u32) -> (Vec<String>, u32) {
    let mut lines = Vec::new();
    let mut off = 0u32;
    while (off as usize) < bytes.len() {
        match decode(&bytes[off as usize..]) {
            Ok((instr, n)) => {
                lines.push(format!("{:08x}: {}", base + off, instr));
                off += n;
            }
            Err(_) => break,
        }
    }
    (lines, off)
}

/// Re-parses a rendered instruction (useful in tests: the display form of
/// every instruction is valid assembler input).
pub fn reassemble_line(line: &str) -> Option<Instr> {
    let src = format!("start: {line}\n");
    let obj = crate::asm::assemble(&src).ok()?;
    decode(&obj.text).ok().map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_all;
    use crate::isa::{Instr, Op, Operand, Size};

    #[test]
    fn one_instruction() {
        let i = Instr::new(Op::Move, Size::Long, Operand::Imm(7), Operand::DReg(2));
        let bytes = encode_all(&[i]);
        let (text, n) = disassemble_one(&bytes).unwrap();
        assert_eq!(text, "move.l #7, d2");
        assert_eq!(n as usize, bytes.len());
    }

    #[test]
    fn whole_segment_with_addresses() {
        let instrs = [
            Instr::new(Op::Nop, Size::Long, Operand::None, Operand::None),
            Instr::new(Op::Rts, Size::Long, Operand::None, Operand::None),
        ];
        let bytes = encode_all(&instrs);
        let (lines, consumed) = disassemble_all(&bytes, 0x1000);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("00001000: nop"));
        assert!(lines[1].starts_with("00001004: rts"));
        assert_eq!(consumed as usize, bytes.len());
    }

    #[test]
    fn stops_at_garbage() {
        let mut bytes = encode_all(&[Instr::new(
            Op::Nop,
            Size::Long,
            Operand::None,
            Operand::None,
        )]);
        bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff]);
        let (lines, consumed) = disassemble_all(&bytes, 0);
        assert_eq!(lines.len(), 1);
        assert_eq!(consumed, 4);
    }

    #[test]
    fn display_form_reassembles() {
        for i in [
            Instr::new(
                Op::Move,
                Size::Byte,
                Operand::PostInc(2),
                Operand::PreDec(3),
            ),
            Instr::new(Op::Add, Size::Long, Operand::DReg(0), Operand::Ind(4)),
            Instr::new(Op::Trap, Size::Long, Operand::Imm(0), Operand::None),
            Instr::new(Op::Lsr, Size::Word, Operand::Imm(3), Operand::DReg(6)),
        ] {
            let rendered = i.to_string();
            let back = reassemble_line(&rendered).unwrap_or_else(|| panic!("reparse {rendered}"));
            assert_eq!(back, i, "through `{rendered}`");
        }
    }
}
