//! Binary instruction encoding.
//!
//! Each instruction is a 4-byte big-endian base word followed by one
//! 4-byte big-endian extension word per extended operand (immediate,
//! absolute address or displacement), source first.
//!
//! Base word layout (most significant byte first):
//!
//! ```text
//! byte 0: opcode
//! byte 1: size (2 bits) | src mode (3 bits) | src reg (3 bits)
//! byte 2: dst mode (3 bits) | dst reg (3 bits) | 0 (2 bits)
//! byte 3: reserved (0)
//! ```
//!
//! Modes: 0 none, 1 data register, 2 address register, 3 immediate (ext),
//! 4 absolute (ext), 5 indirect, 6 indirect+displacement (ext),
//! 7 post-increment. Pre-decrement is mode 7 with the high reserved bit of
//! byte 3 set for that operand (bit 7 = src, bit 6 = dst), keeping the
//! mode field at three bits.

use crate::isa::{Instr, Op, Operand, Size};

/// An encoding or decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The opcode byte does not name an instruction.
    BadOpcode(u8),
    /// An operand mode field held an unknown value.
    BadMode(u8),
    /// The byte slice ended before the instruction did.
    Truncated,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#x}"),
            CodecError::BadMode(m) => write!(f, "unknown operand mode {m}"),
            CodecError::Truncated => write!(f, "instruction truncated"),
        }
    }
}

impl std::error::Error for CodecError {}

fn size_bits(s: Size) -> u8 {
    match s {
        Size::Byte => 0,
        Size::Word => 1,
        Size::Long => 2,
    }
}

fn size_from_bits(b: u8) -> Size {
    match b & 0b11 {
        0 => Size::Byte,
        1 => Size::Word,
        _ => Size::Long,
    }
}

/// (mode, reg, ext, predec) for one operand.
fn operand_fields(o: Operand) -> (u8, u8, Option<u32>, bool) {
    match o {
        Operand::None => (0, 0, None, false),
        Operand::DReg(r) => (1, r, None, false),
        Operand::AReg(r) => (2, r, None, false),
        Operand::Imm(v) => (3, 0, Some(v), false),
        Operand::Abs(v) => (4, 0, Some(v), false),
        Operand::Ind(r) => (5, r, None, false),
        Operand::IndDisp(r, d) => (6, r, Some(d as u32), false),
        Operand::PostInc(r) => (7, r, None, false),
        Operand::PreDec(r) => (7, r, None, true),
    }
}

fn operand_from_fields(
    mode: u8,
    reg: u8,
    ext: Option<u32>,
    predec: bool,
) -> Result<Operand, CodecError> {
    Ok(match mode {
        0 => Operand::None,
        1 => Operand::DReg(reg),
        2 => Operand::AReg(reg),
        3 => Operand::Imm(ext.ok_or(CodecError::Truncated)?),
        4 => Operand::Abs(ext.ok_or(CodecError::Truncated)?),
        5 => Operand::Ind(reg),
        6 => Operand::IndDisp(reg, ext.ok_or(CodecError::Truncated)? as i32),
        7 => {
            if predec {
                Operand::PreDec(reg)
            } else {
                Operand::PostInc(reg)
            }
        }
        m => return Err(CodecError::BadMode(m)),
    })
}

/// Encodes one instruction, appending its bytes to `out`.
pub fn encode(instr: &Instr, out: &mut Vec<u8>) {
    let (sm, sr, sext, spre) = operand_fields(instr.src);
    let (dm, dr, dext, dpre) = operand_fields(instr.dst);
    let b0 = instr.op as u8;
    let b1 = (size_bits(instr.size) << 6) | ((sm & 0b111) << 3) | (sr & 0b111);
    let b2 = ((dm & 0b111) << 5) | ((dr & 0b111) << 2);
    let mut b3 = 0u8;
    if spre {
        b3 |= 0b1000_0000;
    }
    if dpre {
        b3 |= 0b0100_0000;
    }
    out.extend_from_slice(&[b0, b1, b2, b3]);
    if let Some(v) = sext {
        out.extend_from_slice(&v.to_be_bytes());
    }
    if let Some(v) = dext {
        out.extend_from_slice(&v.to_be_bytes());
    }
}

/// Decodes one instruction from the front of `bytes`.
///
/// Returns the instruction and the number of bytes consumed.
pub fn decode(bytes: &[u8]) -> Result<(Instr, u32), CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let op = Op::from_u8(bytes[0]).ok_or(CodecError::BadOpcode(bytes[0]))?;
    let size = size_from_bits(bytes[1] >> 6);
    let sm = (bytes[1] >> 3) & 0b111;
    let sr = bytes[1] & 0b111;
    let dm = (bytes[2] >> 5) & 0b111;
    let dr = (bytes[2] >> 2) & 0b111;
    let spre = bytes[3] & 0b1000_0000 != 0;
    let dpre = bytes[3] & 0b0100_0000 != 0;

    let mut offset = 4usize;
    let mut take_ext = |need: bool| -> Result<Option<u32>, CodecError> {
        if !need {
            return Ok(None);
        }
        let w = bytes.get(offset..offset + 4).ok_or(CodecError::Truncated)?;
        offset += 4;
        Ok(Some(u32::from_be_bytes([w[0], w[1], w[2], w[3]])))
    };

    let s_needs_ext = matches!(sm, 3 | 4 | 6);
    let d_needs_ext = matches!(dm, 3 | 4 | 6);
    let sext = take_ext(s_needs_ext)?;
    let dext = take_ext(d_needs_ext)?;

    let src = operand_from_fields(sm, sr, sext, spre)?;
    let dst = operand_from_fields(dm, dr, dext, dpre)?;
    Ok((Instr { op, size, src, dst }, offset as u32))
}

/// Encodes a whole instruction sequence.
pub fn encode_all(instrs: &[Instr]) -> Vec<u8> {
    let mut out = Vec::new();
    for i in instrs {
        encode(i, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: Instr) {
        let mut buf = Vec::new();
        encode(&i, &mut buf);
        assert_eq!(buf.len() as u32, i.encoded_len());
        let (j, n) = decode(&buf).expect("decode");
        assert_eq!(n as usize, buf.len());
        assert_eq!(i, j);
    }

    #[test]
    fn round_trip_representative_instructions() {
        use Operand::*;
        round_trip(Instr::new(Op::Move, Size::Long, Imm(0xdeadbeef), DReg(3)));
        round_trip(Instr::new(Op::Move, Size::Byte, PostInc(1), PreDec(2)));
        round_trip(Instr::new(Op::Add, Size::Word, Abs(0x1234), DReg(7)));
        round_trip(Instr::new(Op::Lea, Size::Long, IndDisp(5, -8), AReg(0)));
        round_trip(Instr::new(Op::Trap, Size::Long, Imm(0), None));
        round_trip(Instr::new(Op::Rts, Size::Long, None, None));
        round_trip(Instr::new(Op::Bne, Size::Long, None, Abs(0x4000)));
        round_trip(Instr::new(Op::Extb2, Size::Long, None, DReg(4)));
    }

    #[test]
    fn negative_displacement_round_trips() {
        round_trip(Instr::new(
            Op::Move,
            Size::Long,
            Operand::IndDisp(6, -2048),
            Operand::DReg(0),
        ));
    }

    #[test]
    fn bad_opcode_rejected() {
        let buf = [0xff, 0, 0, 0];
        assert_eq!(decode(&buf), Err(CodecError::BadOpcode(0xff)));
    }

    #[test]
    fn truncated_rejected() {
        let i = Instr::new(Op::Move, Size::Long, Operand::Imm(5), Operand::DReg(0));
        let mut buf = Vec::new();
        encode(&i, &mut buf);
        assert_eq!(decode(&buf[..6]), Err(CodecError::Truncated));
        assert_eq!(decode(&buf[..3]), Err(CodecError::Truncated));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = u8> {
        0u8..8
    }

    fn arb_operand() -> impl Strategy<Value = Operand> {
        prop_oneof![
            Just(Operand::None),
            arb_reg().prop_map(Operand::DReg),
            arb_reg().prop_map(Operand::AReg),
            any::<u32>().prop_map(Operand::Imm),
            any::<u32>().prop_map(Operand::Abs),
            arb_reg().prop_map(Operand::Ind),
            (arb_reg(), any::<i32>()).prop_map(|(r, d)| Operand::IndDisp(r, d)),
            arb_reg().prop_map(Operand::PostInc),
            arb_reg().prop_map(Operand::PreDec),
        ]
    }

    fn arb_instr() -> impl Strategy<Value = Instr> {
        (
            (1u8..=34).prop_filter_map("opcode", Op::from_u8),
            prop_oneof![Just(Size::Byte), Just(Size::Word), Just(Size::Long)],
            arb_operand(),
            arb_operand(),
        )
            .prop_map(|(op, size, src, dst)| Instr { op, size, src, dst })
    }

    proptest! {
        #[test]
        fn encode_decode_round_trip(i in arb_instr()) {
            let mut buf = Vec::new();
            encode(&i, &mut buf);
            let (j, n) = decode(&buf).unwrap();
            prop_assert_eq!(n as usize, buf.len());
            prop_assert_eq!(i, j);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
            let _ = decode(&bytes);
        }
    }
}
