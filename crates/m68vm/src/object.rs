//! The assembler's output: a loadable program image description.

use std::collections::BTreeMap;

use crate::isa::IsaLevel;
use crate::mem::{Memory, MemoryLayout};

/// An assembled program: the input to the a.out encoder and the loader.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Object {
    /// Encoded text segment.
    pub text: Vec<u8>,
    /// Initialised data segment.
    pub data: Vec<u8>,
    /// Length of the zero-filled bss that follows the data.
    pub bss_len: u32,
    /// Entry point (virtual address).
    pub entry: u32,
    /// Symbol table: name to virtual address.
    pub symbols: BTreeMap<String, u32>,
    /// The highest ISA level any instruction in the text requires.
    pub required_isa: IsaLevel,
}

impl Object {
    /// The virtual base address of this object's data segment.
    pub fn data_base(&self) -> u32 {
        MemoryLayout::data_base(self.text.len() as u32)
    }

    /// Builds a fresh process memory image from the object.
    pub fn to_memory(&self) -> Memory {
        Memory::new(self.text.clone(), self.data.clone(), self.bss_len)
    }

    /// Looks up a symbol's virtual address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_memory_places_segments() {
        let obj = Object {
            text: vec![1, 2, 3, 4],
            data: vec![9, 8],
            bss_len: 4,
            entry: MemoryLayout::TEXT_BASE,
            symbols: BTreeMap::new(),
            required_isa: IsaLevel::Isa1,
        };
        let mem = obj.to_memory();
        assert_eq!(mem.text(), &[1, 2, 3, 4]);
        assert_eq!(mem.data(), &[9, 8, 0, 0, 0, 0]);
        assert_eq!(mem.data_base(), obj.data_base());
    }
}
