//! Lexical path algebra: the kernel's name bookkeeping.
//!
//! These functions work purely on strings. They collapse `.` and `..`
//! and duplicate slashes but **never** look at the filesystem, so symbolic
//! links survive untouched — matching the paper's observation that the
//! dumped path names "have been constructed by combining the names given
//! by the process to the kernel ... and resolving any references to the
//! current or parent directories. This means that symbolic links are not
//! resolved."

/// Is this an absolute path?
pub fn is_absolute(path: &str) -> bool {
    path.starts_with('/')
}

/// Splits a path into its non-empty, non-`.` components, keeping `..`.
pub fn raw_components(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|c| !c.is_empty() && *c != ".")
}

/// Lexically normalises an absolute path: collapses `//`, removes `.`,
/// and applies `..` against the preceding component.
///
/// `..` at the root stays at the root, as in Unix. The result always
/// starts with `/` and never ends with `/` unless it *is* `/`.
///
/// # Panics
///
/// Panics if `path` is relative; normalisation of relative paths is only
/// meaningful against a base, via [`combine`].
pub fn normalize(path: &str) -> String {
    assert!(is_absolute(path), "normalize requires an absolute path");
    let mut stack: Vec<&str> = Vec::new();
    for c in raw_components(path) {
        if c == ".." {
            stack.pop();
        } else {
            stack.push(c);
        }
    }
    if stack.is_empty() {
        "/".to_string()
    } else {
        let mut s = String::new();
        for c in &stack {
            s.push('/');
            s.push_str(c);
        }
        s
    }
}

/// The paper's `chdir()`/`open()` bookkeeping: if `path` is absolute it
/// simply replaces the old value; if relative, "it is combined with the
/// value of the old current working directory ... and the result is
/// copied back".
///
/// `cwd` must be absolute (the kernel initialises it from the first
/// absolute `chdir()` at boot and children inherit it).
pub fn combine(cwd: &str, path: &str) -> String {
    if is_absolute(path) {
        normalize(path)
    } else {
        let mut joined = String::with_capacity(cwd.len() + 1 + path.len());
        joined.push_str(cwd);
        joined.push('/');
        joined.push_str(path);
        normalize(&joined)
    }
}

/// The final component of a path (`""` for `/`).
pub fn basename(path: &str) -> &str {
    path.rsplit('/').find(|c| !c.is_empty()).unwrap_or("")
}

/// Everything but the final component, normalised; `/` for single-level
/// paths.
pub fn dirname(path: &str) -> String {
    let norm = if is_absolute(path) {
        normalize(path)
    } else {
        combine("/", path)
    };
    match norm.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(i) => norm[..i].to_string(),
    }
}

/// Components of a normalised absolute path, in order.
pub fn components(path: &str) -> Vec<String> {
    normalize(path)
        .split('/')
        .filter(|c| !c.is_empty())
        .map(str::to_string)
        .collect()
}

/// Does `path` lie under the remote-mount convention directory `/n`?
///
/// `dumpproc` uses this test: "if after resolving the symbolic links, a
/// file is found to be local to the machine on which dumpproc is running
/// (i.e., its name does not begin with /n), the string `/n/<machinename>`
/// is prepended to its name".
pub fn is_remote_path(path: &str) -> bool {
    path == "/n" || path.starts_with("/n/")
}

/// Splits a path under `/n` into the host name and the remainder path on
/// that host (`/` if nothing follows the host).
pub fn split_remote(path: &str) -> Option<(String, String)> {
    let rest = path.strip_prefix("/n/")?;
    let (host, tail) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    if host.is_empty() {
        return None;
    }
    let tail = if tail.is_empty() { "/" } else { tail };
    Some((host.to_string(), normalize(tail)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses() {
        assert_eq!(normalize("/a/b/../c"), "/a/c");
        assert_eq!(normalize("/a/./b//c/"), "/a/b/c");
        assert_eq!(normalize("/.."), "/");
        assert_eq!(normalize("/../../x"), "/x");
        assert_eq!(normalize("/"), "/");
    }

    #[test]
    fn combine_absolute_replaces() {
        assert_eq!(combine("/usr/alice", "/tmp/x"), "/tmp/x");
    }

    #[test]
    fn combine_relative_joins() {
        assert_eq!(combine("/usr/alice", "src/main.c"), "/usr/alice/src/main.c");
        assert_eq!(combine("/usr/alice", ".."), "/usr");
        assert_eq!(combine("/usr/alice", "../bob/./x"), "/usr/bob/x");
        assert_eq!(combine("/", "etc"), "/etc");
    }

    #[test]
    fn basename_dirname() {
        assert_eq!(basename("/usr/foo"), "foo");
        assert_eq!(basename("/"), "");
        assert_eq!(dirname("/usr/foo"), "/usr");
        assert_eq!(dirname("/usr"), "/");
        assert_eq!(dirname("/"), "/");
    }

    #[test]
    fn remote_path_convention() {
        assert!(is_remote_path("/n/brador/usr/foo"));
        assert!(!is_remote_path("/usr/foo"));
        assert!(!is_remote_path("/nx/foo"));
        let (host, rest) = split_remote("/n/brador/usr/foo").unwrap();
        assert_eq!(host, "brador");
        assert_eq!(rest, "/usr/foo");
        let (host, rest) = split_remote("/n/brador").unwrap();
        assert_eq!(host, "brador");
        assert_eq!(rest, "/");
        assert!(split_remote("/usr/foo").is_none());
    }

    #[test]
    fn components_of_path() {
        assert_eq!(components("/a//b/./c"), vec!["a", "b", "c"]);
        assert!(components("/").is_empty());
    }

    #[test]
    fn symlink_text_is_untouched() {
        // The algebra never resolves symlinks: it cannot even see them.
        // A path that *happens* to traverse a symlink keeps its given
        // name, as the paper requires.
        assert_eq!(combine("/usr/alice", "work/file"), "/usr/alice/work/file");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_component() -> impl Strategy<Value = String> {
        prop_oneof![
            3 => "[a-z]{1,8}",
            1 => Just(".".to_string()),
            1 => Just("..".to_string()),
        ]
    }

    fn arb_abs_path() -> impl Strategy<Value = String> {
        proptest::collection::vec(arb_component(), 0..8).prop_map(|cs| format!("/{}", cs.join("/")))
    }

    fn arb_rel_path() -> impl Strategy<Value = String> {
        proptest::collection::vec(arb_component(), 1..8).prop_map(|cs| cs.join("/"))
    }

    proptest! {
        #[test]
        fn normalize_is_idempotent(p in arb_abs_path()) {
            let once = normalize(&p);
            prop_assert_eq!(normalize(&once), once.clone());
        }

        #[test]
        fn normalized_has_no_dots(p in arb_abs_path()) {
            let n = normalize(&p);
            prop_assert!(n.starts_with('/'));
            for c in n.split('/') {
                prop_assert!(c != "." && c != "..");
            }
        }

        #[test]
        fn combine_result_is_normalized_absolute(cwd in arb_abs_path(), p in arb_rel_path()) {
            let cwd = normalize(&cwd);
            let c = combine(&cwd, &p);
            prop_assert!(c.starts_with('/'));
            prop_assert_eq!(normalize(&c), c.clone());
        }

        #[test]
        fn combine_with_absolute_ignores_cwd(cwd in arb_abs_path(), p in arb_abs_path()) {
            let cwd = normalize(&cwd);
            prop_assert_eq!(combine(&cwd, &p), normalize(&p));
        }

        #[test]
        fn dirname_basename_reassemble(p in arb_abs_path()) {
            let n = normalize(&p);
            if n != "/" {
                let d = dirname(&n);
                let b = basename(&n);
                let re = if d == "/" { format!("/{b}") } else { format!("{d}/{b}") };
                prop_assert_eq!(re, n);
            }
        }
    }
}
