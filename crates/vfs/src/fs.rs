//! The inode filesystem of one simulated machine.

use std::collections::BTreeMap;

use sysdefs::{Access, Credentials, Errno, FileMode, Gid, SysResult, Uid};

/// An inode number.
pub type Ino = u32;

/// A character device named by the filesystem but serviced by the kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceId {
    /// The bit bucket, `/dev/null`.
    Null,
    /// A terminal, `/dev/ttyN` or `/dev/console`. The id indexes the
    /// world's terminal table.
    Tty(u32),
}

/// What an inode is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InodeKind {
    /// A regular file and its contents.
    Regular(Vec<u8>),
    /// A directory: name to inode map.
    Directory(BTreeMap<String, Ino>),
    /// A symbolic link: "files containing the name of another file".
    Symlink(String),
    /// A character device.
    Device(DeviceId),
}

/// An inode: kind plus ownership and permissions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inode {
    /// This inode's number.
    pub ino: Ino,
    /// For directories: the parent directory (the root is its own
    /// parent), used to resolve `..` during walks. Meaningless for
    /// other kinds.
    pub parent: Ino,
    /// Kind and contents.
    pub kind: InodeKind,
    /// Permission bits.
    pub mode: FileMode,
    /// Owning user.
    pub uid: Uid,
    /// Owning group.
    pub gid: Gid,
    /// Hard-link count.
    pub nlink: u32,
}

impl Inode {
    /// Is this a directory?
    pub fn is_dir(&self) -> bool {
        matches!(self.kind, InodeKind::Directory(_))
    }

    /// Length of a regular file's contents (0 for other kinds).
    pub fn len(&self) -> usize {
        match &self.kind {
            InodeKind::Regular(data) => data.len(),
            _ => 0,
        }
    }

    /// Is this a zero-length or non-regular inode?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The outcome of a [`Filesystem::walk`]: resolution either finished or
/// stopped at a symbolic link for the caller to expand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalkOutcome {
    /// Every component resolved; here is the final inode.
    Done(Ino),
    /// A symbolic link was met. The caller must splice `target` in front
    /// of `remaining` and restart resolution (possibly on another
    /// machine, if the target is absolute and crosses a mount).
    Symlink {
        /// The link inode itself (what `readlink` reads).
        ino: Ino,
        /// The link's contents.
        target: String,
        /// Path components not yet consumed, in order.
        remaining: Vec<String>,
    },
}

/// One machine's filesystem: an inode arena rooted at `/`.
#[derive(Clone, Debug)]
pub struct Filesystem {
    inodes: Vec<Option<Inode>>,
    root: Ino,
    /// Bumped on every mutation (all of which funnel through
    /// [`Filesystem::inode_mut`] or [`Filesystem::alloc`]); lets
    /// callers cache resolution results and invalidate them exactly
    /// when the tree could have changed.
    generation: u64,
}

impl Filesystem {
    /// A filesystem containing only an empty root directory owned by root.
    pub fn new() -> Filesystem {
        let root = Inode {
            ino: 0,
            parent: 0,
            kind: InodeKind::Directory(BTreeMap::new()),
            mode: FileMode::DIR_DEFAULT,
            uid: Uid::ROOT,
            gid: Gid::WHEEL,
            nlink: 2,
        };
        Filesystem {
            inodes: vec![Some(root)],
            root: 0,
            generation: 0,
        }
    }

    /// The root directory's inode number.
    pub fn root(&self) -> Ino {
        self.root
    }

    /// Borrows an inode.
    pub fn inode(&self, ino: Ino) -> SysResult<&Inode> {
        self.inodes
            .get(ino as usize)
            .and_then(|slot| slot.as_ref())
            .ok_or(Errno::ESTALE)
    }

    fn inode_mut(&mut self, ino: Ino) -> SysResult<&mut Inode> {
        self.generation += 1;
        self.inodes
            .get_mut(ino as usize)
            .and_then(|slot| slot.as_mut())
            .ok_or(Errno::ESTALE)
    }

    /// The mutation counter: unchanged ⇒ every past resolution is
    /// still valid.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn alloc(&mut self, kind: InodeKind, mode: FileMode, cred: &Credentials) -> Ino {
        self.generation += 1;
        let ino = self.inodes.len() as Ino;
        self.inodes.push(Some(Inode {
            ino,
            parent: 0,
            kind,
            mode,
            uid: cred.euid,
            gid: cred.egid,
            nlink: 1,
        }));
        ino
    }

    fn dir_entries(&self, dir: Ino) -> SysResult<&BTreeMap<String, Ino>> {
        match &self.inode(dir)?.kind {
            InodeKind::Directory(entries) => Ok(entries),
            _ => Err(Errno::ENOTDIR),
        }
    }

    fn dir_entries_mut(&mut self, dir: Ino) -> SysResult<&mut BTreeMap<String, Ino>> {
        match &mut self.inode_mut(dir)?.kind {
            InodeKind::Directory(entries) => Ok(entries),
            _ => Err(Errno::ENOTDIR),
        }
    }

    /// Looks up one name in a directory. `..` in the root stays in the
    /// root; `.`/`..` are handled by the caller's path algebra otherwise.
    pub fn lookup(&self, dir: Ino, name: &str) -> SysResult<Ino> {
        self.dir_entries(dir)?
            .get(name)
            .copied()
            .ok_or(Errno::ENOENT)
    }

    /// Walks `components` from the directory `base`.
    ///
    /// Symbolic links are never followed here — each one is handed back
    /// to the caller via [`WalkOutcome::Symlink`], even in mid-path. If
    /// `cred` is given, search permission is checked on every directory.
    pub fn walk(
        &self,
        base: Ino,
        components: &[String],
        cred: Option<&Credentials>,
    ) -> SysResult<WalkOutcome> {
        let mut cur = base;
        for (i, comp) in components.iter().enumerate() {
            let node = self.inode(cur)?;
            let entries = match &node.kind {
                InodeKind::Directory(e) => e,
                InodeKind::Symlink(_) => unreachable!("symlinks returned before descent"),
                _ => return Err(Errno::ENOTDIR),
            };
            if let Some(c) = cred {
                if !node.mode.allows(c, node.uid, node.gid, Access::Exec) {
                    return Err(Errno::EACCES);
                }
            }
            let next = *entries.get(comp.as_str()).ok_or(Errno::ENOENT)?;
            let next_node = self.inode(next)?;
            if let InodeKind::Symlink(target) = &next_node.kind {
                return Ok(WalkOutcome::Symlink {
                    ino: next,
                    target: target.clone(),
                    remaining: components[i + 1..].to_vec(),
                });
            }
            cur = next;
        }
        Ok(WalkOutcome::Done(cur))
    }

    /// Creates a regular file in `dir`, failing if the name exists.
    pub fn create_file(
        &mut self,
        dir: Ino,
        name: &str,
        mode: FileMode,
        cred: &Credentials,
    ) -> SysResult<Ino> {
        self.create_node(dir, name, InodeKind::Regular(Vec::new()), mode, cred)
    }

    /// Creates a directory in `dir`.
    pub fn mkdir(
        &mut self,
        dir: Ino,
        name: &str,
        mode: FileMode,
        cred: &Credentials,
    ) -> SysResult<Ino> {
        self.create_node(dir, name, InodeKind::Directory(BTreeMap::new()), mode, cred)
    }

    /// Creates a symbolic link in `dir` whose contents are `target`.
    pub fn symlink(
        &mut self,
        dir: Ino,
        name: &str,
        target: &str,
        cred: &Credentials,
    ) -> SysResult<Ino> {
        self.create_node(
            dir,
            name,
            InodeKind::Symlink(target.to_string()),
            FileMode(0o777),
            cred,
        )
    }

    /// Creates a device node in `dir`.
    pub fn mknod(
        &mut self,
        dir: Ino,
        name: &str,
        device: DeviceId,
        cred: &Credentials,
    ) -> SysResult<Ino> {
        self.create_node(
            dir,
            name,
            InodeKind::Device(device),
            FileMode::DEV_DEFAULT,
            cred,
        )
    }

    fn create_node(
        &mut self,
        dir: Ino,
        name: &str,
        kind: InodeKind,
        mode: FileMode,
        cred: &Credentials,
    ) -> SysResult<Ino> {
        if name.is_empty() || name.contains('/') || name == "." || name == ".." {
            return Err(Errno::EINVAL);
        }
        {
            let d = self.inode(dir)?;
            if !d.is_dir() {
                return Err(Errno::ENOTDIR);
            }
            if !d.mode.allows(cred, d.uid, d.gid, Access::Write) {
                return Err(Errno::EACCES);
            }
        }
        if self.dir_entries(dir)?.contains_key(name) {
            return Err(Errno::EEXIST);
        }
        let is_dir = matches!(kind, InodeKind::Directory(_));
        let ino = self.alloc(kind, mode, cred);
        self.inode_mut(ino)?.parent = dir;
        self.dir_entries_mut(dir)?.insert(name.to_string(), ino);
        if is_dir {
            self.inode_mut(ino)?.nlink = 2;
            self.inode_mut(dir)?.nlink += 1;
        }
        Ok(ino)
    }

    /// Adds a hard link `name` in `dir` to an existing inode.
    pub fn link(&mut self, dir: Ino, name: &str, target: Ino, cred: &Credentials) -> SysResult<()> {
        let t = self.inode(target)?;
        if t.is_dir() {
            return Err(Errno::EISDIR);
        }
        {
            let d = self.inode(dir)?;
            if !d.mode.allows(cred, d.uid, d.gid, Access::Write) {
                return Err(Errno::EACCES);
            }
        }
        if self.dir_entries(dir)?.contains_key(name) {
            return Err(Errno::EEXIST);
        }
        self.dir_entries_mut(dir)?.insert(name.to_string(), target);
        self.inode_mut(target)?.nlink += 1;
        Ok(())
    }

    /// Removes the entry `name` from `dir`, freeing the inode when its
    /// link count reaches zero. Non-empty directories are refused.
    pub fn unlink(&mut self, dir: Ino, name: &str, cred: &Credentials) -> SysResult<()> {
        {
            let d = self.inode(dir)?;
            if !d.mode.allows(cred, d.uid, d.gid, Access::Write) {
                return Err(Errno::EACCES);
            }
        }
        let target = self.lookup(dir, name)?;
        let is_dir = {
            let t = self.inode(target)?;
            if let InodeKind::Directory(entries) = &t.kind {
                if !entries.is_empty() {
                    return Err(Errno::ENOTEMPTY);
                }
                true
            } else {
                false
            }
        };
        self.dir_entries_mut(dir)?.remove(name);
        let t = self.inode_mut(target)?;
        t.nlink = t.nlink.saturating_sub(if is_dir { 2 } else { 1 });
        if t.nlink == 0 || (is_dir && t.nlink <= 1) {
            self.inodes[target as usize] = None;
            if is_dir {
                self.inode_mut(dir)?.nlink -= 1;
            }
        }
        Ok(())
    }

    /// The parent of a directory (`..`); the root is its own parent.
    pub fn parent_of(&self, dir: Ino) -> SysResult<Ino> {
        let node = self.inode(dir)?;
        if !node.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        Ok(node.parent)
    }

    /// Lists a directory's entry names in order.
    pub fn readdir(&self, dir: Ino) -> SysResult<Vec<String>> {
        Ok(self.dir_entries(dir)?.keys().cloned().collect())
    }

    /// Reads a symbolic link's contents (`readlink(2)`).
    pub fn readlink(&self, ino: Ino) -> SysResult<String> {
        match &self.inode(ino)?.kind {
            InodeKind::Symlink(t) => Ok(t.clone()),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Reads up to `len` bytes of a regular file from `offset`.
    pub fn read(&self, ino: Ino, offset: u64, len: usize) -> SysResult<Vec<u8>> {
        match &self.inode(ino)?.kind {
            InodeKind::Regular(data) => {
                let start = (offset as usize).min(data.len());
                let end = start.saturating_add(len).min(data.len());
                Ok(data[start..end].to_vec())
            }
            InodeKind::Directory(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Writes bytes to a regular file at `offset`, zero-filling any gap,
    /// and returns the bytes written.
    pub fn write(&mut self, ino: Ino, offset: u64, bytes: &[u8]) -> SysResult<usize> {
        match &mut self.inode_mut(ino)?.kind {
            InodeKind::Regular(data) => {
                let start = offset as usize;
                if start > data.len() {
                    data.resize(start, 0);
                }
                let end = start + bytes.len();
                if end > data.len() {
                    data.resize(end, 0);
                }
                data[start..end].copy_from_slice(bytes);
                Ok(bytes.len())
            }
            InodeKind::Directory(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Truncates a regular file to zero length (`O_TRUNC`).
    pub fn truncate(&mut self, ino: Ino) -> SysResult<()> {
        match &mut self.inode_mut(ino)?.kind {
            InodeKind::Regular(data) => {
                data.clear();
                Ok(())
            }
            _ => Err(Errno::EINVAL),
        }
    }

    /// The length of a regular file.
    pub fn file_len(&self, ino: Ino) -> SysResult<u64> {
        match &self.inode(ino)?.kind {
            InodeKind::Regular(data) => Ok(data.len() as u64),
            _ => Ok(0),
        }
    }

    /// Number of live inodes (for tests and statistics).
    pub fn inode_count(&self) -> usize {
        self.inodes.iter().filter(|s| s.is_some()).count()
    }
}

impl Default for Filesystem {
    fn default() -> Self {
        Filesystem::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root_cred() -> Credentials {
        Credentials::root()
    }

    fn fixture() -> (Filesystem, Ino, Ino) {
        let mut fs = Filesystem::new();
        let cred = root_cred();
        let usr = fs
            .mkdir(fs.root(), "usr", FileMode::DIR_DEFAULT, &cred)
            .unwrap();
        let tmp = fs.mkdir(usr, "tmp", FileMode(0o777), &cred).unwrap();
        (fs, usr, tmp)
    }

    #[test]
    fn create_and_walk() {
        let (mut fs, _, tmp) = fixture();
        let f = fs
            .create_file(tmp, "a.out01234", FileMode::REG_DEFAULT, &root_cred())
            .unwrap();
        let out = fs
            .walk(
                fs.root(),
                &["usr".into(), "tmp".into(), "a.out01234".into()],
                None,
            )
            .unwrap();
        assert_eq!(out, WalkOutcome::Done(f));
    }

    #[test]
    fn missing_component_is_enoent() {
        let (fs, _, _) = fixture();
        assert_eq!(
            fs.walk(fs.root(), &["nope".into()], None),
            Err(Errno::ENOENT)
        );
    }

    #[test]
    fn file_in_the_middle_is_enotdir() {
        let (mut fs, usr, _) = fixture();
        fs.create_file(usr, "f", FileMode::REG_DEFAULT, &root_cred())
            .unwrap();
        assert_eq!(
            fs.walk(fs.root(), &["usr".into(), "f".into(), "x".into()], None),
            Err(Errno::ENOTDIR)
        );
    }

    #[test]
    fn walk_surfaces_symlinks_mid_path() {
        let (mut fs, usr, _) = fixture();
        fs.symlink(usr, "lnk", "/n/brador/usr", &root_cred())
            .unwrap();
        let out = fs
            .walk(fs.root(), &["usr".into(), "lnk".into(), "foo".into()], None)
            .unwrap();
        match out {
            WalkOutcome::Symlink {
                target, remaining, ..
            } => {
                assert_eq!(target, "/n/brador/usr");
                assert_eq!(remaining, vec!["foo".to_string()]);
            }
            other => panic!("expected symlink, got {other:?}"),
        }
    }

    #[test]
    fn read_write_with_offsets() {
        let (mut fs, _, tmp) = fixture();
        let f = fs
            .create_file(tmp, "data", FileMode::REG_DEFAULT, &root_cred())
            .unwrap();
        assert_eq!(fs.write(f, 0, b"hello").unwrap(), 5);
        assert_eq!(fs.write(f, 10, b"world").unwrap(), 5);
        assert_eq!(fs.file_len(f).unwrap(), 15);
        assert_eq!(fs.read(f, 0, 5).unwrap(), b"hello");
        assert_eq!(fs.read(f, 5, 5).unwrap(), vec![0; 5]); // Zero-filled gap.
        assert_eq!(fs.read(f, 10, 100).unwrap(), b"world"); // Short read at EOF.
        assert_eq!(fs.read(f, 100, 10).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn truncate_clears() {
        let (mut fs, _, tmp) = fixture();
        let f = fs
            .create_file(tmp, "t", FileMode::REG_DEFAULT, &root_cred())
            .unwrap();
        fs.write(f, 0, b"contents").unwrap();
        fs.truncate(f).unwrap();
        assert_eq!(fs.file_len(f).unwrap(), 0);
    }

    #[test]
    fn unlink_frees_at_zero_links() {
        let (mut fs, _, tmp) = fixture();
        let before = fs.inode_count();
        let f = fs
            .create_file(tmp, "x", FileMode::REG_DEFAULT, &root_cred())
            .unwrap();
        fs.link(tmp, "y", f, &root_cred()).unwrap();
        fs.unlink(tmp, "x", &root_cred()).unwrap();
        assert!(fs.inode(f).is_ok()); // Still linked as y.
        fs.unlink(tmp, "y", &root_cred()).unwrap();
        assert_eq!(fs.inode(f).unwrap_err(), Errno::ESTALE);
        assert_eq!(fs.inode_count(), before);
    }

    #[test]
    fn unlink_nonempty_dir_refused() {
        let (mut fs, usr, _) = fixture();
        assert_eq!(
            fs.unlink(fs.root(), "usr", &root_cred()),
            Err(Errno::ENOTEMPTY)
        );
        let _ = usr;
    }

    #[test]
    fn permissions_enforced_for_ordinary_users() {
        let (mut fs, usr, _) = fixture();
        let alice = Credentials::user(Uid(100), Gid(10));
        // usr is 0755 root-owned: alice cannot create there.
        assert_eq!(
            fs.create_file(usr, "mine", FileMode::REG_DEFAULT, &alice),
            Err(Errno::EACCES)
        );
        // But /usr/tmp is 0777.
        let tmp = fs.lookup(usr, "tmp").unwrap();
        assert!(fs
            .create_file(tmp, "mine", FileMode::REG_DEFAULT, &alice)
            .is_ok());
    }

    #[test]
    fn walk_checks_search_permission() {
        let (mut fs, _, _) = fixture();
        let cred = root_cred();
        let secret = fs
            .mkdir(fs.root(), "secret", FileMode(0o700), &cred)
            .unwrap();
        fs.create_file(secret, "f", FileMode::REG_DEFAULT, &cred)
            .unwrap();
        let alice = Credentials::user(Uid(100), Gid(10));
        assert_eq!(
            fs.walk(fs.root(), &["secret".into(), "f".into()], Some(&alice)),
            Err(Errno::EACCES)
        );
        assert!(fs
            .walk(fs.root(), &["secret".into(), "f".into()], Some(&cred))
            .is_ok());
    }

    #[test]
    fn devices_and_readlink() {
        let (mut fs, _, _) = fixture();
        let cred = root_cred();
        let dev = fs
            .mkdir(fs.root(), "dev", FileMode::DIR_DEFAULT, &cred)
            .unwrap();
        let null = fs.mknod(dev, "null", DeviceId::Null, &cred).unwrap();
        assert!(matches!(
            fs.inode(null).unwrap().kind,
            InodeKind::Device(DeviceId::Null)
        ));
        assert_eq!(fs.readlink(null), Err(Errno::EINVAL));
        let lnk = fs.symlink(dev, "tty0link", "/dev/tty0", &cred).unwrap();
        assert_eq!(fs.readlink(lnk).unwrap(), "/dev/tty0");
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut fs, _, tmp) = fixture();
        fs.create_file(tmp, "x", FileMode::REG_DEFAULT, &root_cred())
            .unwrap();
        assert_eq!(
            fs.create_file(tmp, "x", FileMode::REG_DEFAULT, &root_cred()),
            Err(Errno::EEXIST)
        );
    }

    #[test]
    fn bad_names_rejected() {
        let (mut fs, _, tmp) = fixture();
        for bad in ["", ".", "..", "a/b"] {
            assert_eq!(
                fs.create_file(tmp, bad, FileMode::REG_DEFAULT, &root_cred()),
                Err(Errno::EINVAL),
                "name {bad:?}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Writing at arbitrary offsets then reading back returns exactly
        /// what was written, with zero fill in the gaps.
        #[test]
        fn write_read_round_trip(
            writes in proptest::collection::vec(
                (0u64..2048, proptest::collection::vec(any::<u8>(), 0..64)),
                0..16,
            )
        ) {
            let mut fs = Filesystem::new();
            let cred = Credentials::root();
            let f = fs.create_file(fs.root(), "f", FileMode::REG_DEFAULT, &cred).unwrap();
            let mut model: Vec<u8> = Vec::new();
            for (off, bytes) in &writes {
                fs.write(f, *off, bytes).unwrap();
                let start = *off as usize;
                if start > model.len() {
                    model.resize(start, 0);
                }
                let end = start + bytes.len();
                if end > model.len() {
                    model.resize(end, 0);
                }
                model[start..end].copy_from_slice(bytes);
            }
            prop_assert_eq!(fs.file_len(f).unwrap() as usize, model.len());
            let got = fs.read(f, 0, model.len() + 16).unwrap();
            prop_assert_eq!(got, model);
        }
    }
}
