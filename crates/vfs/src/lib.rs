//! An in-memory inode filesystem with directories, symbolic links,
//! devices and the path algebra the paper's kernel modifications need.
//!
//! Each simulated machine owns one [`Filesystem`]. Three design points
//! mirror the paper:
//!
//! * **Path strings are first-class.** [`path::combine`] implements
//!   exactly the paper's §5.1 bookkeeping: an absolute argument replaces
//!   the stored current-directory string, a relative one is combined with
//!   it, "resolving any references to the current or parent directories".
//!   Symbolic links are deliberately *not* resolved by this algebra — that
//!   is the whole reason `dumpproc` must later resolve them with
//!   `readlink()`.
//! * **Symlink expansion is the caller's job.** [`Filesystem::walk`]
//!   stops and *returns* every symbolic link it meets; the kernel decides
//!   how to continue (client-side restart, or the NFS server-side rules
//!   that reproduce the paper's `/n/classic/n/brador` failure).
//! * **Devices are leaves.** `/dev/null` and `/dev/tty*` are inodes whose
//!   I/O the kernel routes; the filesystem only names them.

pub mod fs;
pub mod path;

pub use fs::{DeviceId, Filesystem, Ino, Inode, InodeKind, WalkOutcome};
