//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync::Mutex` and recovers from poisoning, matching
//! parking_lot's panic-transparent locking and its `lock()` signature
//! (no `Result`).

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
