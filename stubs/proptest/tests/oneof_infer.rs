//! Regression test: `prop_oneof!` arms must infer the union's value
//! type from an `impl Strategy<Value = _>` return position alone.

use proptest::prelude::*;

#[derive(Clone, Debug, PartialEq)]
enum E {
    A,
    B,
    C(u32),
}

fn arb_e() -> impl Strategy<Value = E> {
    prop_oneof![
        Just(E::A),
        Just(E::B),
        any::<u32>().prop_map(E::C),
    ]
}

#[test]
fn generates_all_variants() {
    let mut rng = proptest::test_runner::TestRng::new(1);
    let s = arb_e();
    let (mut a, mut b, mut c) = (false, false, false);
    for _ in 0..200 {
        match s.generate(&mut rng) {
            E::A => a = true,
            E::B => b = true,
            E::C(_) => c = true,
        }
    }
    assert!(a && b && c);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Doc comments and config attributes must both parse.
    #[test]
    fn macro_round_trip(x in 0u32..100, s in "[a-z]{1,4}", v in proptest::collection::vec(any::<u8>(), 0..8)) {
        prop_assert!(x < 100);
        prop_assert!((1..=4).contains(&s.len()), "bad len {}", s.len());
        prop_assert_eq!(v.len() < 8, true);
    }
}
