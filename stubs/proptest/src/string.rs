//! Generator for the regex subset proptest accepts as a string
//! strategy.
//!
//! Supported syntax — enough for every pattern in this workspace:
//! literal characters, character classes `[a-zA-Z0-9 ]` (ranges and
//! singles, no negation), groups `(...)`, and the repetition suffixes
//! `{m}`, `{m,n}`, `?`, `*`, `+` (the unbounded forms are capped at 8
//! repeats). Alternation is not implemented; patterns using it panic so
//! the gap is loud rather than silently misgenerated.

use crate::test_runner::TestRng;
use std::iter::Peekable;
use std::str::Chars;

enum Atom {
    Lit(char),
    /// Inclusive (start, end) ranges; singles are (c, c).
    Class(Vec<(char, char)>),
    Group(Vec<Piece>),
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse_seq(&mut pattern.chars().peekable(), pattern, false);
    let mut out = String::new();
    emit_seq(&pieces, rng, &mut out);
    out
}

fn emit_seq(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
    for piece in pieces {
        let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
        for _ in 0..n {
            match &piece.atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Class(ranges) => out.push(pick_class(ranges, rng)),
                Atom::Group(inner) => emit_seq(inner, rng, out),
            }
        }
    }
}

fn pick_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges.iter().map(|(a, b)| (*b as u64) - (*a as u64) + 1).sum();
    let mut pick = rng.below(total);
    for (a, b) in ranges {
        let span = (*b as u64) - (*a as u64) + 1;
        if pick < span {
            return char::from_u32(*a as u32 + pick as u32).expect("class range stays in scalar values");
        }
        pick -= span;
    }
    unreachable!("class pick out of range")
}

fn parse_seq(chars: &mut Peekable<Chars>, pattern: &str, in_group: bool) -> Vec<Piece> {
    let mut pieces = Vec::new();
    while let Some(&c) = chars.peek() {
        match c {
            ')' if in_group => {
                chars.next();
                return pieces;
            }
            '(' => {
                chars.next();
                let inner = parse_seq(chars, pattern, true);
                pieces.push(with_repeat(Atom::Group(inner), chars, pattern));
            }
            '[' => {
                chars.next();
                let class = parse_class(chars, pattern);
                pieces.push(with_repeat(Atom::Class(class), chars, pattern));
            }
            '|' => panic!("string pattern {pattern:?}: alternation is not supported by the offline proptest stub"),
            '\\' => {
                chars.next();
                let escaped = chars.next().unwrap_or_else(|| panic!("string pattern {pattern:?}: trailing backslash"));
                pieces.push(with_repeat(Atom::Lit(escaped), chars, pattern));
            }
            _ => {
                chars.next();
                pieces.push(with_repeat(Atom::Lit(c), chars, pattern));
            }
        }
    }
    if in_group {
        panic!("string pattern {pattern:?}: unclosed group");
    }
    pieces
}

fn parse_class(chars: &mut Peekable<Chars>, pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("string pattern {pattern:?}: unclosed character class"));
        if c == ']' {
            if ranges.is_empty() {
                panic!("string pattern {pattern:?}: empty character class");
            }
            return ranges;
        }
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next(); // the '-'
            if let Some(&end) = lookahead.peek() {
                if end != ']' {
                    chars.next();
                    chars.next();
                    assert!(c <= end, "string pattern {pattern:?}: inverted class range");
                    ranges.push((c, end));
                    continue;
                }
            }
        }
        ranges.push((c, c));
    }
}

fn with_repeat(atom: Atom, chars: &mut Peekable<Chars>, pattern: &str) -> Piece {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (min, max) = match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("repeat lower bound"),
                            hi.trim().parse().expect("repeat upper bound"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("repeat count");
                            (n, n)
                        }
                    };
                    assert!(min <= max, "string pattern {pattern:?}: inverted repeat {{{spec}}}");
                    return Piece { atom, min, max };
                }
                spec.push(c);
            }
            panic!("string pattern {pattern:?}: unclosed repeat");
        }
        Some('?') => {
            chars.next();
            Piece { atom, min: 0, max: 1 }
        }
        Some('*') => {
            chars.next();
            Piece { atom, min: 0, max: 8 }
        }
        Some('+') => {
            chars.next();
            Piece { atom, min: 1, max: 8 }
        }
        _ => Piece { atom, min: 1, max: 1 },
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    fn all(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::from_name(pattern);
        (0..n).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn simple_class_with_counts() {
        for s in all("[a-z]{1,10}", 200) {
            assert!((1..=10).contains(&s.len()), "{s:?}");
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn grouped_path_pattern() {
        for s in all("(/[a-z]{1,6}){1,4}", 200) {
            assert!(s.starts_with('/'), "{s:?}");
            let comps: Vec<&str> = s.split('/').skip(1).collect();
            assert!((1..=4).contains(&comps.len()), "{s:?}");
            for c in comps {
                assert!((1..=6).contains(&c.len()), "{s:?}");
                assert!(c.bytes().all(|b| b.is_ascii_lowercase()), "{s:?}");
            }
        }
    }

    #[test]
    fn multi_range_class() {
        for s in all("[a-zA-Z0-9 ]{0,20}", 200) {
            assert!(s.len() <= 20);
            assert!(s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b' '), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_class() {
        // "[ -~]" is the full printable-ASCII range.
        let mut seen_nonalnum = false;
        for s in all("[ -~]{0,64}", 300) {
            assert!(s.len() <= 64);
            for b in s.bytes() {
                assert!((0x20..=0x7e).contains(&b), "{s:?}");
                if !b.is_ascii_alphanumeric() {
                    seen_nonalnum = true;
                }
            }
        }
        assert!(seen_nonalnum, "never generated punctuation from [ -~]");
    }

    #[test]
    fn literals_and_exact_repeats() {
        for s in all("ab[0-9]{3}", 50) {
            assert_eq!(s.len(), 5);
            assert!(s.starts_with("ab"));
            assert!(s[2..].bytes().all(|b| b.is_ascii_digit()));
        }
    }
}
