//! Deterministic RNG and per-test configuration.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// xorshift64* generator, seeded from the test name so every run of a
/// given property explores the same deterministic sequence.
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point.
        TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`; 0 when `n` is 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x::y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x::y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::from_name("x::z");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
    }
}
