//! The `Strategy` trait, combinators and primitive strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// How many times a filtering strategy retries before giving up.
const MAX_FILTER_TRIES: u32 = 1_000;

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter: regenerates until the predicate accepts.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected {MAX_FILTER_TRIES} candidates", self.whence);
    }
}

/// `prop_filter_map` adapter: regenerates until the map returns `Some`.
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F, U> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_FILTER_TRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map({}) rejected {MAX_FILTER_TRIES} candidates",
            self.whence
        );
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

/// Boxes one `prop_oneof!` arm. A free function (not an associated fn
/// on `Union`) so the arm's value type can be inferred independently of
/// the union's.
pub fn wrap_arm<S>(strategy: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward boundary values one time in eight: uniform
                // draws essentially never hit 0 / MIN / MAX on wide types.
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        2 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

// ---------------------------------------------------------------------
// Integer ranges
// ---------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = self.end as i128 - self.start as i128;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64; // 0 means the full u64 span
                let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                (lo + off as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ---------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (1u8..=34).generate(&mut rng);
            assert!((1..=34).contains(&w));
            let x = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let mut rng = TestRng::new(2);
        let s = (0u32..10).prop_map(|v| v * 2).prop_filter("nonzero", |v| *v != 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v != 0 && v < 20);
        }
    }

    #[test]
    fn filter_map_retries() {
        let mut rng = TestRng::new(3);
        let s = (0u32..100).prop_filter_map("odd", |v| (v % 2 == 1).then_some(v));
        for _ in 0..100 {
            assert!(s.generate(&mut rng) % 2 == 1);
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::new(4);
        let s = Union::new(vec![
            (9, wrap_arm(Just(1u32))),
            (1, wrap_arm(Just(2u32))),
        ]);
        let ones = (0..1000).filter(|_| s.generate(&mut rng) == 1).count();
        assert!(ones > 700, "weight-9 arm picked only {ones}/1000 times");
    }

    #[test]
    fn arbitrary_hits_boundaries() {
        let mut rng = TestRng::new(5);
        let mut saw_extreme = false;
        for _ in 0..200 {
            let v = u32::arbitrary(&mut rng);
            if v == 0 || v == u32::MAX {
                saw_extreme = true;
            }
        }
        assert!(saw_extreme);
    }
}
