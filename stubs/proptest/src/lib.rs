//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors a minimal property-testing engine behind proptest's API:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_filter_map`, strategies for integer ranges, tuples, `Just`,
//! `any::<T>()`, regex-subset string patterns, `collection::vec` and
//! `array::uniform18`, plus the `proptest!`, `prop_oneof!`,
//! `prop_assert!` and `prop_assert_eq!` macros.
//!
//! Differences from real proptest: no shrinking (failures report the
//! generated inputs via plain `assert!` panics), and the RNG is
//! deterministic per test (seeded from the test's module path) so runs
//! are reproducible.

pub mod array;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::wrap_arm($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::wrap_arm($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
}
