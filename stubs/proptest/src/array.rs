//! `proptest::array::uniform18` (the only arity this workspace uses).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct Uniform18<S>(S);

/// Strategy for `[S::Value; 18]` with every element drawn from `s`.
pub fn uniform18<S: Strategy>(s: S) -> Uniform18<S> {
    Uniform18(s)
}

impl<S: Strategy> Strategy for Uniform18<S> {
    type Value = [S::Value; 18];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.0.generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::uniform18;
    use crate::strategy::{any, Strategy};
    use crate::test_runner::TestRng;

    #[test]
    fn fills_all_slots() {
        let mut rng = TestRng::new(18);
        let arr: [u32; 18] = uniform18(any::<u32>()).generate(&mut rng);
        assert_eq!(arr.len(), 18);
        assert!(arr.iter().any(|&v| v != arr[0]), "all 18 draws identical");
    }
}
