//! `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Size specification for [`vec`]: an exact length or a range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for vectors whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn ranged_lengths() {
        let mut rng = TestRng::new(11);
        let s = vec(any::<u8>(), 0..40);
        for _ in 0..200 {
            assert!(s.generate(&mut rng).len() < 40);
        }
    }

    #[test]
    fn exact_length() {
        let mut rng = TestRng::new(12);
        let s = vec(any::<u32>(), 17usize);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng).len(), 17);
        }
    }

    #[test]
    fn nested_vec_of_tuples() {
        let mut rng = TestRng::new(13);
        let s = vec((0u64..2048, vec(any::<u8>(), 0..64)), 0..16);
        let v = s.generate(&mut rng);
        for (off, bytes) in v {
            assert!(off < 2048);
            assert!(bytes.len() < 64);
        }
    }
}
