//! Offline stand-in for the subset of `crossbeam` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal API-compatible replacements for its external
//! dependencies (see `stubs/README.md`). Only `channel::{unbounded,
//! Sender, Receiver}` is provided, implemented on `std::sync::mpsc`
//! with the receiver wrapped in a mutex so it is clonable and `Sync`
//! like crossbeam's.

pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError};

    /// Multi-producer sender, API-compatible with `crossbeam::channel::Sender`.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Multi-consumer receiver, API-compatible with `crossbeam::channel::Receiver`.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).recv()
        }
    }

    /// A channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::thread;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let t = thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(rx.recv().unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_when_senders_dropped() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
