//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Implements a real wall-clock measuring harness behind criterion's
//! API shape: `Criterion`, `benchmark_group` (with `sample_size`,
//! `throughput`, `bench_function`, `finish`), `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. `cargo bench -- --test`
//! runs every benchmark body once as a smoke check, like criterion's
//! test mode. Results print as mean ns/iter plus derived element
//! throughput when a `Throughput` was declared.

use std::time::{Duration, Instant};

/// Throughput declaration for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Entry point object handed to benchmark functions.
pub struct Criterion {
    test_mode: bool,
    measure_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        // CRITERION_MEASURE_MS trades precision for run time (default 300).
        let measure_ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            test_mode,
            measure_ms,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.test_mode, self.measure_ms, name, None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(self.c.test_mode, self.c.measure_ms, &full, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    measure_ms: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        if self.test_mode {
            std::hint::black_box(f());
            self.iters = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        // One warm-up iteration outside the timed region.
        std::hint::black_box(f());
        let budget = Duration::from_millis(self.measure_ms);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn run_bench<F>(test_mode: bool, measure_ms: u64, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        test_mode,
        measure_ms,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if test_mode {
        println!("test {name} ... ok");
        return;
    }
    if b.iters == 0 {
        println!("{name}: no iterations recorded");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            println!("{name}: {ns_per_iter:.0} ns/iter ({per_sec:.0} elem/s, {} iters)", b.iters);
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            println!("{name}: {ns_per_iter:.0} ns/iter ({per_sec:.0} B/s, {} iters)", b.iters);
        }
        None => println!("{name}: {ns_per_iter:.0} ns/iter ({} iters)", b.iters),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher {
            test_mode: false,
            measure_ms: 1,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iters >= 1);
        // warm-up iteration runs once more than the timed count
        assert_eq!(n, b.iters + 1);
    }
}
