//! Live migration: the protocol engine on real workloads.
//!
//! The paper's `migrate` freezes the process for the whole dump +
//! restart, so downtime equals total migration time. The protocol
//! engine (`pmig::proto`) separates the two:
//!
//! * a blocked interactive program (the §4.2 screen editor) pre-copies
//!   in a single round — it dirties nothing while it waits, so the
//!   freeze delta is empty and downtime is just the freeze + restart;
//! * a dirty-page hog forces the full protocol spread: pre-copy streams
//!   the ballast live and freezes for a working-set delta, demand
//!   restarts first and pages the ballast in afterwards.
//!
//! ```text
//! cargo run --example live_migration
//! ```

use m68vm::{assemble, IsaLevel};
use pmig::proto::{migrate_proto, Protocol};
use pmig::workloads;
use sysdefs::{Credentials, Gid, Uid};
use ukernel::{KernelConfig, World};

fn main() {
    let alice = Credentials::user(Uid(100), Gid(10));

    // ---------------- Case 1: pre-copy on the screen editor -----------
    println!("== Case 1: pre-copy the raw-mode editor off brick ==");
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    let obj = assemble(workloads::EDITOR_PROGRAM).unwrap();
    w.install_program(brick, "/bin/editor", &obj).unwrap();
    let (tty, console) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/editor", Some(tty), alice.clone())
        .unwrap();
    w.run_slices(50_000);
    console.type_input("a");
    w.run_slices(50_000);
    println!(
        "editor painted {:?}, raw mode {}",
        console.output_text(),
        console.with(|t| t.gtty().is_raw())
    );

    let report = migrate_proto(&mut w, pid, brick, schooner, Protocol::PreCopy, alice.clone())
        .expect("engine completes");
    assert!(report.migrated(), "editor lands on schooner: {report:?}");
    println!(
        "pre-copy: downtime {:.1} ms, total {:.1} ms, {} round(s), {} pages streamed",
        report.downtime_us as f64 / 1_000.0,
        report.total_us as f64 / 1_000.0,
        report.rounds,
        report.pages_precopied
    );
    println!(
        "a blocked editor dirties nothing between rounds, so one round\n\
         covers the image and the freeze delta is nearly empty.\n"
    );

    // ---------------- Case 2: all three protocols on a dirty hog ------
    println!("== Case 2: the dirty-page hog under each protocol ==");
    println!(
        "{:<10} {:>12} {:>10} {:>7} {:>10} {:>8}",
        "protocol", "downtime(ms)", "total(ms)", "rounds", "precopied", "fetched"
    );
    for proto in Protocol::ALL {
        let mut w = World::new(KernelConfig::paper());
        let brick = w.add_machine("brick", IsaLevel::Isa1);
        let schooner = w.add_machine("schooner", IsaLevel::Isa1);
        let obj = assemble(&workloads::dirty_hog_program(1_500, 10 * 0x2000)).unwrap();
        w.install_program(brick, "/bin/hog", &obj).unwrap();
        let pid = w.spawn_vm_proc(brick, "/bin/hog", None, alice.clone()).unwrap();
        w.run_slices(10);
        let report = migrate_proto(&mut w, pid, brick, schooner, proto, alice.clone())
            .expect("engine completes");
        assert!(report.migrated(), "{}: {report:?}", proto.name());
        println!(
            "{:<10} {:>12.1} {:>10.1} {:>7} {:>10} {:>8}",
            proto.name(),
            report.downtime_us as f64 / 1_000.0,
            report.total_us as f64 / 1_000.0,
            report.rounds,
            report.pages_precopied,
            report.pages_fetched
        );
    }
    println!(
        "\nEager's downtime is its total; pre-copy trades a longer total\n\
         for a shorter freeze; demand restarts quickest of all but keeps\n\
         a residual dependency on the source until the drain finishes."
    );
}
