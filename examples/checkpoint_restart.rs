//! Checkpointing a long computation (§8).
//!
//! A checkpoint daemon snapshots a running program every few simulated
//! seconds, archiving the dump files plus consistent copies of its open
//! files. When the machine "crashes", we restore the latest checkpoint
//! and the program continues from there instead of from the beginning.
//!
//! ```text
//! cargo run --example checkpoint_restart
//! ```

use m68vm::{assemble, IsaLevel};
use pmig::workloads;
use sysdefs::{Credentials, Gid, Signal, Uid};
use ukernel::{KernelConfig, World};

fn main() {
    let alice = Credentials::user(Uid(100), Gid(10));
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);

    let obj = assemble(workloads::TEST_PROGRAM).unwrap();
    w.install_program(brick, "/bin/job", &obj).unwrap();
    let (tty, console) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/job", Some(tty), alice.clone())
        .unwrap();
    println!("long-running job started on brick as pid {pid}");
    w.run_slices(50_000);
    console.type_input("result batch 1\n");
    w.run_slices(50_000);
    console.type_input("result batch 2\n");
    w.run_slices(50_000);
    println!("job progress so far:\n{}", console.output_text());

    // Checkpoint every 3 simulated seconds, twice.
    let plan = apps::CheckpointPlan {
        pid,
        interval_us: 3_000_000,
        count: 2,
        dir: "/u/checkpoints".into(),
    };
    let plan2 = plan.clone();
    let daemon = w.spawn_native_proc(
        brick,
        "checkpointd",
        Some(tty),
        alice.clone(),
        Box::new(move |sys| match apps::run_checkpointer(sys, &plan2) {
            Ok((records, final_pid)) => {
                for r in &records {
                    eprintln!("  checkpoint {} archived in {}", r.n, r.dir);
                }
                eprintln!("  job continues as pid {final_pid}");
                0
            }
            Err(e) => e.as_u16() as u32,
        }),
    );
    let dinfo = w
        .run_until_exit(brick, daemon, 5_000_000)
        .expect("checkpointd finishes");
    assert_eq!(dinfo.status, 0, "checkpointing failed");
    println!("two checkpoints taken (see /u/checkpoints)");

    // Disaster: the machine loses the live job (simulated crash).
    let live: Vec<_> = w
        .machine(brick)
        .procs
        .values()
        .filter(|p| p.comm.starts_with("a.out"))
        .map(|p| p.pid)
        .collect();
    for victim in live {
        println!("CRASH: killing live job pid {victim}");
        w.host_post_signal(brick, victim, Signal::SIGKILL);
    }
    w.run_slices(50_000);

    // Restore checkpoint 1: the program resumes at the state it had at
    // the first snapshot, seeing the snapshot-consistent files.
    println!("restoring checkpoint 1 ...");
    let (tty2, console2) = w.add_terminal(brick);
    let pid_at_dump = pid;
    let _restorer = w.spawn_native_proc(
        brick,
        "restore",
        Some(tty2),
        alice,
        Box::new(move |sys| {
            apps::restore_checkpoint(sys, "/u/checkpoints", 1, pid_at_dump).as_u16() as u32
        }),
    );
    w.run_slices(200_000);
    console2.type_input("result batch 3 (after restore)\n");
    w.run_slices(200_000);
    console2.with(|t| t.close());
    w.run_slices(200_000);
    println!(
        "restored job output (note the counters continue from the checkpoint):\n{}",
        console2.output_text()
    );
    println!(
        "Without the checkpoint the job would have restarted at R1; with it,\n\
         only the work since the snapshot was lost."
    );
}
