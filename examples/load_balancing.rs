//! Load balancing and the night-batch scheduler (§8).
//!
//! Part 1: six CPU-bound jobs land on one machine of a three-machine
//! network; the load balancer migrates aged jobs to idle machines and
//! the makespan drops.
//!
//! Part 2: the "CPU hogs" scenario — jobs submitted during the day are
//! held stopped, then spread across the network at nightfall.
//!
//! ```text
//! cargo run --release --example load_balancing
//! ```

use m68vm::{assemble, IsaLevel};
use pmig::workloads;
use simtime::SimDuration;
use sysdefs::{Credentials, Gid, Uid};
use ukernel::{KernelConfig, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

fn build_cluster(jobs: u32) -> World {
    let mut w = World::new(KernelConfig::paper());
    let a = w.add_machine("node0", IsaLevel::Isa1);
    let _ = w.add_machine("node1", IsaLevel::Isa1);
    let _ = w.add_machine("node2", IsaLevel::Isa1);
    let obj = assemble(&workloads::cpu_hog_program(60)).unwrap();
    w.install_program(a, "/bin/hog", &obj).unwrap();
    for _ in 0..jobs {
        w.spawn_vm_proc(a, "/bin/hog", None, alice()).unwrap();
    }
    w
}

fn all_done(w: &World) -> bool {
    (0..w.machine_count()).all(|m| {
        !w.machine(m)
            .procs
            .values()
            .any(|p| p.comm.contains("hog") || p.comm.starts_with("a.out"))
    })
}

fn makespan(w: &World) -> SimDuration {
    (0..w.machine_count())
        .map(|m| w.machine(m).now.since(simtime::SimTime::BOOT))
        .max()
        .unwrap()
}

fn main() {
    println!("== Part 1: load balancing 6 CPU hogs on 3 machines ==");
    // Without balancing.
    let mut w1 = build_cluster(6);
    while !all_done(&w1) {
        let t = w1.machine(0).now + SimDuration::secs(2);
        if w1.run_until_time(t, 50_000_000) == ukernel::RunOutcome::BudgetExhausted {
            break;
        }
    }
    let unbalanced = makespan(&w1);
    println!("  no balancing:   all jobs done at {unbalanced}");

    // With the balancer migrating aged jobs off the busy node.
    let mut w2 = build_cluster(6);
    let lb = apps::LoadBalancer {
        min_age: SimDuration::millis(500),
        imbalance_threshold: 2,
        cred: Credentials::root(),
    };
    let migrations = lb.run_balanced(&mut w2, 1_500_000, 300, all_done);
    let balanced = makespan(&w2);
    println!(
        "  with balancing: all jobs done at {balanced} ({} migrations)",
        migrations.len()
    );
    for r in &migrations {
        println!(
            "    moved pid {} node{} -> node{} (now pid {})",
            r.old_pid, r.from, r.to, r.new_pid
        );
    }
    println!(
        "  speed-up: {:.2}x",
        unbalanced.as_secs_f64() / balanced.as_secs_f64().max(1e-9)
    );

    println!("\n== Part 2: night batch for CPU hogs ==");
    let mut w = World::new(KernelConfig::paper());
    let day = w.add_machine("node0", IsaLevel::Isa1);
    let _ = w.add_machine("node1", IsaLevel::Isa1);
    let _ = w.add_machine("node2", IsaLevel::Isa1);
    let obj = assemble(&workloads::cpu_hog_program(40)).unwrap();
    w.install_program(day, "/bin/hog", &obj).unwrap();
    let mut batch = apps::NightBatch::new(day);
    for i in 0..3 {
        let pid = w.spawn_vm_proc(day, "/bin/hog", None, alice()).unwrap();
        batch.submit(&mut w, pid);
        println!("  submitted job {i} (pid {pid}) — held until nightfall");
    }
    // The working day passes; the jobs make no progress.
    let t = w.machine(day).now + SimDuration::secs(10);
    w.run_until_time(t, 10_000_000);
    println!(
        "  daytime over at {}, jobs still queued",
        w.machine(day).now
    );

    let placements = batch.nightfall(&mut w);
    println!("  nightfall: jobs spread across the network");
    for (old, machine, new) in &placements {
        println!("    job {old} -> node{machine} (pid {new})");
    }
    for (_, machine, pid) in &placements {
        w.run_until_exit(*machine, *pid, 50_000_000)
            .expect("job finishes overnight");
    }
    println!("  all batch jobs finished by {}", makespan(&w));
}
