//! Migrating a visual program: terminal modes matter.
//!
//! The paper (§4.1-4.2): a screen editor puts its terminal in raw,
//! no-echo mode. `restart` re-applies the dumped terminal flags, "so
//! that visual applications such as screen editors can be restarted
//! properly" — but only when `restart` runs locally at the target
//! terminal. Through `rsh`, "certain terminal modes can not be
//! preserved ... thus the process will become useless."
//!
//! This example shows both outcomes.
//!
//! ```text
//! cargo run --example editor_migration
//! ```

use m68vm::{assemble, IsaLevel};
use pmig::commands::RestartArgs;
use pmig::{api, workloads};
use sysdefs::{Credentials, Gid, Uid};
use ukernel::{KernelConfig, World};

fn main() {
    let alice = Credentials::user(Uid(100), Gid(10));

    // ---------------- Case 1: local restart preserves raw mode --------
    println!("== Case 1: dumpproc on brick, restart typed on schooner ==");
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    let obj = assemble(workloads::EDITOR_PROGRAM).unwrap();
    w.install_program(brick, "/bin/editor", &obj).unwrap();
    let (tty, console) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/editor", Some(tty), alice.clone())
        .unwrap();
    w.run_slices(50_000);
    console.type_input("a");
    w.run_slices(50_000);
    println!(
        "editor on brick painted {:?} after one *unbuffered* keystroke (raw mode: {})",
        console.output_text(),
        console.with(|t| t.gtty().is_raw())
    );

    let status = api::run_dumpproc(&mut w, brick, pid, alice.clone()).unwrap();
    assert_eq!(status, 0);
    let (tty2, console2) = w.add_terminal(schooner);
    let new_pid = api::run_restart(
        &mut w,
        schooner,
        RestartArgs {
            pid,
            dump_host: Some("brick".into()),
            demand: false,
        },
        Some(tty2),
        alice.clone(),
    )
    .expect("restart");
    w.run_slices(100_000);
    println!(
        "after restart on schooner, the new terminal is raw: {}",
        console2.with(|t| t.gtty().is_raw())
    );
    console2.type_input("b");
    w.run_slices(100_000);
    println!(
        "one keystroke later schooner's screen shows {:?} — the editor survived",
        console2.output_text()
    );
    console2.type_input("q");
    w.run_slices(100_000);
    let _ = w.run_until_exit(schooner, new_pid, 100_000);

    // ---------------- Case 2: migrate over rsh degrades the editor ----
    println!("\n== Case 2: migrate typed on brick (restart goes over rsh) ==");
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    w.install_program(brick, "/bin/editor", &obj).unwrap();
    let (tty, console) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/editor", Some(tty), alice.clone())
        .unwrap();
    w.run_slices(50_000);
    console.type_input("a");
    w.run_slices(50_000);

    let new_pid = api::migrate_process(&mut w, pid, brick, schooner, brick, None, alice)
        .expect("migrate completes");
    w.run_slices(100_000);
    let p = w.proc_ref(schooner, new_pid).expect("restored editor");
    let pipe = w.terminal(p.user.tty.expect("rsh pipe endpoint"));
    println!(
        "the editor now sits behind an rsh pipe; raw mode stuck: {}",
        pipe.with(|t| t.gtty().is_raw())
    );
    pipe.type_input("b");
    w.run_slices(100_000);
    println!(
        "a single keystroke produced {:?} — nothing. \"The process will become useless.\"",
        pipe.output_text()
    );
    println!(
        "\nMoral (the paper's §4.2 advice): migrate visual programs by typing\n\
         the command on the destination machine, so restart runs locally."
    );
}
