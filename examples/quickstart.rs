//! Quickstart: the paper's §4.2 walkthrough.
//!
//! We boot two Sun-2 workstations, `brick` and `schooner`, NFS
//! cross-mounted under `/n`. A user runs the paper's test program on
//! brick, types a couple of lines, and then moves the *running* process
//! to schooner with `dumpproc` + `restart`. The counters prove the
//! process resumed exactly where it stopped.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use m68vm::{assemble, IsaLevel};
use pmig::commands::RestartArgs;
use pmig::{api, workloads};
use sysdefs::{Credentials, Gid, Uid};
use ukernel::{KernelConfig, World};

fn main() {
    let alice = Credentials::user(Uid(100), Gid(10));

    println!("== Booting brick and schooner (Sun-2s, NFS cross-mounted) ==");
    let mut world = World::new(KernelConfig::paper());
    let brick = world.add_machine("brick", IsaLevel::Isa1);
    let schooner = world.add_machine("schooner", IsaLevel::Isa1);

    // Install the paper's test program and run it on brick's terminal.
    let obj = assemble(workloads::TEST_PROGRAM).expect("assemble test program");
    world
        .install_program(brick, "/bin/testprog", &obj)
        .expect("install");
    let (tty, console) = world.add_terminal(brick);
    let pid = world
        .spawn_vm_proc(brick, "/bin/testprog", Some(tty), alice.clone())
        .expect("spawn");
    println!("started /bin/testprog on brick as pid {pid}");

    world.run_slices(50_000);
    console.type_input("first line\n");
    world.run_slices(50_000);
    console.type_input("second line\n");
    world.run_slices(50_000);
    println!("--- brick:/dev/tty ---");
    print!("{}", console.output_text());
    println!("----------------------");

    // `dumpproc -p <pid>` on brick.
    println!("\n== dumpproc -p {pid} (on brick) ==");
    let status = api::run_dumpproc(&mut world, brick, pid, alice.clone()).expect("dumpproc");
    assert_eq!(status, 0);
    let names = dumpfmt::dump_file_names(pid);
    for file in [&names.a_out, &names.files, &names.stack] {
        let len = world
            .host_read_file(brick, file)
            .map(|b| b.len())
            .unwrap_or(0);
        println!("  {file}  ({len} bytes)");
    }
    let files = dumpfmt::FilesFile::decode(
        &world
            .host_read_file(brick, &names.files)
            .expect("files dump"),
    )
    .expect("decode");
    println!("  dumped cwd: {}", files.cwd);
    for (i, fd) in files.fds.iter().enumerate() {
        if let dumpfmt::FdRecord::File { path, offset, .. } = fd {
            println!("  fd {i}: {path} @ {offset}");
        }
    }

    // `restart -p <pid> -h brick` on schooner.
    println!("\n== restart -p {pid} -h brick (on schooner) ==");
    let (tty2, console2) = world.add_terminal(schooner);
    let new_pid = api::run_restart(
        &mut world,
        schooner,
        RestartArgs {
            pid,
            dump_host: Some("brick".into()),
            demand: false,
        },
        Some(tty2),
        alice,
    )
    .expect("restart");
    println!("process restored on schooner as pid {new_pid}");

    world.run_slices(100_000);
    console2.type_input("typed on schooner\n");
    world.run_slices(100_000);
    console2.with(|t| t.close());
    let info = world
        .run_until_exit(schooner, new_pid, 200_000)
        .expect("restored process exits at EOF");

    println!("--- schooner:/dev/tty ---");
    print!("{}", console2.output_text());
    println!("-------------------------");
    println!("restored process exited with status {}", info.status);

    let out = world
        .host_read_file(brick, "/tmp/testout")
        .expect("output file on brick");
    println!(
        "\nbrick:/tmp/testout (appended over NFS after the move):\n{}",
        String::from_utf8_lossy(&out)
    );
    println!(
        "The counters continued (R3->R4) and the output file kept growing on\n\
         brick over NFS. The process now runs as pid {new_pid} in schooner's\n\
         pid space — exactly the paper's transparent migration."
    );
}
