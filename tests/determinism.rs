//! The dynamic half of the determinism contract.
//!
//! simlint statically forbids the usual sources of run-to-run variation
//! (hash-ordered containers, host clocks, ambient randomness); this
//! test checks the property those rules exist to protect: running the
//! same migration scenario twice in one process produces **bit-identical**
//! final world state. HashMap's `RandomState` reseeds per process *and*
//! per instance, so two in-process runs diverging is exactly the
//! symptom an iteration-order bug would show.
//!
//! The scenario is the Figure-4 "R-L" shape — the remote-command
//! migrate with the most moving parts: three machines, the §6.2 test
//! program stopped at its first prompt on `brick`, and a `migrate`
//! command run on `schooner` pulling it over.

use m68vm::{assemble, IsaLevel};
use sysdefs::{Credentials, Gid, Uid};
use ukernel::{KernelConfig, World};
use vfs::InodeKind;

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

/// Runs the full migrate scenario and renders everything observable
/// about the final world into one canonical string.
fn run_scenario() -> String {
    run_scenario_with(simnet::FaultPlan::none(), true)
}

/// The same scenario under an injected-fault plan. `require_success`
/// is off for faulty runs: the engine may legitimately finish with the
/// process back at the source; determinism is about the *trajectory*
/// being identical, not about it being the happy path.
fn run_scenario_with(faults: simnet::FaultPlan, require_success: bool) -> String {
    let mut w = World::new(KernelConfig::paper());
    w.faults = faults;
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    let _third = w.add_machine("third", IsaLevel::Isa1);

    let obj = assemble(pmig::workloads::TEST_PROGRAM).unwrap();
    w.install_program(brick, "/bin/testprog", &obj).unwrap();
    let (tty, victim_tty) = w.add_terminal(brick);
    let victim = w
        .spawn_vm_proc(brick, "/bin/testprog", Some(tty), alice())
        .unwrap();
    w.run_slices(50_000);

    let cmd = w.spawn_native_proc(
        schooner,
        "migrate",
        None,
        alice(),
        Box::new(move |sys| match pmig::migrate(sys, victim, "brick", "schooner") {
            Ok(status) => status,
            Err(e) => e.as_u16() as u32,
        }),
    );
    let info = w
        .run_until_exit(schooner, cmd, 30_000_000)
        .expect("migrate command exits");
    if require_success {
        assert_eq!(info.status, 0, "migrate must succeed");
    }

    snapshot(&w, &victim_tty.output_text())
}

/// A canonical textual dump of the world: per-machine clocks, event
/// counters, process accounting, a structural hash of each filesystem
/// tree, the full `ktrace` ring, and the victim terminal transcript.
fn snapshot(w: &World, victim_tty: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for mid in 0..w.machine_count() {
        let m = w.machine(mid);
        writeln!(
            out,
            "machine {mid} {} now={}us busy={}us",
            m.name,
            m.now.as_micros(),
            m.busy.as_micros()
        )
        .unwrap();
        let s = &m.stats;
        writeln!(
            out,
            "  stats sys={} ctx={} sig={} rpc={} fork={} exec={} dump={} rest={} faults={}",
            s.syscalls,
            s.ctx_switches,
            s.signals,
            s.nfs_rpcs,
            s.forks,
            s.execs,
            s.dumps,
            s.restores,
            s.faults_injected
        )
        .unwrap();
        for (pid, p) in &m.procs {
            writeln!(
                out,
                "  proc {pid} comm={} state={:?} utime={}us stime={}us",
                p.comm,
                p.state,
                p.utime.as_micros(),
                p.stime.as_micros()
            )
            .unwrap();
        }
        writeln!(out, "  warm=[{}]", {
            let v: Vec<&str> = m.warm_paths.iter().map(String::as_str).collect();
            v.join(",")
        })
        .unwrap();
        writeln!(out, "  fs_hash={:#018x}", fs_tree_hash(&m.fs)).unwrap();
        // The whole trace ring is part of the contract: identical runs
        // must cut identical records in identical order.
        writeln!(
            out,
            "  ktrace seq={} dropped={}",
            m.ktrace.seq, m.ktrace.dropped
        )
        .unwrap();
        for r in m.ktrace.records() {
            writeln!(out, "  kt {}", r.render()).unwrap();
        }
    }
    for (&(mid, pid), info) in &w.finished {
        writeln!(
            out,
            "exit m{mid} pid={pid} status={} cpu={}us",
            info.status,
            info.cpu().as_micros()
        )
        .unwrap();
    }
    writeln!(out, "tty:\n{victim_tty}").unwrap();
    out
}

/// FNV-1a over a canonical depth-first walk of a filesystem tree:
/// names, inode metadata, and file contents all feed the hash, so any
/// divergence anywhere in either machine's tree changes the digest.
fn fs_tree_hash(fs: &vfs::Filesystem) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h = FNV_OFFSET;
    hash_dir(fs, fs.root(), "/", &mut h);
    h
}

fn fnv_bytes(h: &mut u64, bytes: &[u8]) {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn hash_dir(fs: &vfs::Filesystem, dir: vfs::Ino, path: &str, h: &mut u64) {
    // readdir is BTreeMap-backed, so this walk order is itself part of
    // the determinism contract.
    for name in fs.readdir(dir).unwrap() {
        let ino = fs.lookup(dir, &name).unwrap();
        let node = fs.inode(ino).unwrap();
        let child = format!("{path}{name}");
        fnv_bytes(h, child.as_bytes());
        fnv_bytes(h, &node.mode.0.to_be_bytes());
        fnv_bytes(h, &node.uid.0.to_be_bytes());
        match &node.kind {
            InodeKind::Regular(data) => {
                fnv_bytes(h, b"F");
                fnv_bytes(h, data);
            }
            InodeKind::Directory(_) => {
                fnv_bytes(h, b"D");
                hash_dir(fs, ino, &format!("{child}/"), h);
            }
            InodeKind::Symlink(target) => {
                fnv_bytes(h, b"L");
                fnv_bytes(h, target.as_bytes());
            }
            InodeKind::Device(_) => fnv_bytes(h, b"C"),
        }
    }
}

#[test]
fn migrate_scenario_is_bit_identical_across_runs() {
    let first = run_scenario();
    let second = run_scenario();
    assert!(
        !first.is_empty() && first.contains("dump") && first.contains("machine 0 brick"),
        "snapshot looks degenerate:\n{first}"
    );
    assert_eq!(
        first, second,
        "two identical runs diverged — a nondeterminism bug simlint's rules exist to prevent"
    );
}

/// The injected-fault extension of the same contract: with a nonzero
/// fault seed in the plan, two runs must still be bit-identical — the
/// injected faults themselves are simulation events, recorded in the
/// ktrace ring the snapshot includes.
#[test]
fn faulty_migrate_with_same_fault_seed_is_bit_identical() {
    use simnet::{FaultPlan, FaultSite, FaultSpec};
    let plan = || {
        FaultPlan::seeded(0xDECAF)
            .with(FaultSpec::always(FaultSite::MidDumpCrash, 1))
            .with(FaultSpec::always(FaultSite::NfsOp, 2))
    };
    let first = run_scenario_with(plan(), false);
    let second = run_scenario_with(plan(), false);
    assert!(
        first.contains(" fault "),
        "injected faults must appear in the ktrace snapshot:\n{first}"
    );
    assert_eq!(
        first, second,
        "two runs with the same fault seed diverged — injected faults must be deterministic"
    );
}
