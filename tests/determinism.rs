//! The dynamic half of the determinism contract.
//!
//! simlint statically forbids the usual sources of run-to-run variation
//! (hash-ordered containers, host clocks, ambient randomness); this
//! test checks the property those rules exist to protect: running the
//! same migration scenario twice in one process produces **bit-identical**
//! final world state. HashMap's `RandomState` reseeds per process *and*
//! per instance, so two in-process runs diverging is exactly the
//! symptom an iteration-order bug would show.
//!
//! The scenario is the Figure-4 "R-L" shape — the remote-command
//! migrate with the most moving parts: three machines, the §6.2 test
//! program stopped at its first prompt on `brick`, and a `migrate`
//! command run on `schooner` pulling it over.
//!
//! The snapshot itself lives in `common::snapshot_world`, shared with
//! the host-poke regression tests and statically checked for field
//! coverage by simlint's `snapshot-coverage` rule.

mod common;

use m68vm::{assemble, IsaLevel};
use sysdefs::{Credentials, Gid, Uid};
use ukernel::{KernelConfig, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

/// Runs the full migrate scenario and renders everything observable
/// about the final world into one canonical string.
fn run_scenario() -> String {
    run_scenario_with(simnet::FaultPlan::none(), true)
}

/// The same scenario under an injected-fault plan. `require_success`
/// is off for faulty runs: the engine may legitimately finish with the
/// process back at the source; determinism is about the *trajectory*
/// being identical, not about it being the happy path.
fn run_scenario_with(faults: simnet::FaultPlan, require_success: bool) -> String {
    run_scenario_cfg(KernelConfig::paper(), faults, require_success)
}

/// The same scenario under an explicit kernel configuration, for the
/// host-accelerator toggles (superblocks) whose on/off runs must be
/// bit-identical even mid-fault.
fn run_scenario_cfg(
    cfg: KernelConfig,
    faults: simnet::FaultPlan,
    require_success: bool,
) -> String {
    let mut w = World::new(cfg);
    w.faults = faults;
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    let _third = w.add_machine("third", IsaLevel::Isa1);

    let obj = assemble(pmig::workloads::TEST_PROGRAM).unwrap();
    w.install_program(brick, "/bin/testprog", &obj).unwrap();
    let (tty, _victim_tty) = w.add_terminal(brick);
    let victim = w
        .spawn_vm_proc(brick, "/bin/testprog", Some(tty), alice())
        .unwrap();
    w.run_slices(50_000);

    let cmd = w.spawn_native_proc(
        schooner,
        "migrate",
        None,
        alice(),
        Box::new(move |sys| match pmig::migrate(sys, victim, "brick", "schooner") {
            Ok(status) => status,
            Err(e) => e.as_u16() as u32,
        }),
    );
    let info = w
        .run_until_exit(schooner, cmd, 30_000_000)
        .expect("migrate command exits");
    if require_success {
        assert_eq!(info.status, 0, "migrate must succeed");
    }

    common::snapshot_world(&w)
}

#[test]
fn migrate_scenario_is_bit_identical_across_runs() {
    let first = run_scenario();
    let second = run_scenario();
    assert!(
        !first.is_empty() && first.contains("dump") && first.contains("machine 0 brick"),
        "snapshot looks degenerate:\n{first}"
    );
    assert_eq!(
        first, second,
        "two identical runs diverged — a nondeterminism bug simlint's rules exist to prevent"
    );
}

/// The injected-fault extension of the same contract: with a nonzero
/// fault seed in the plan, two runs must still be bit-identical — the
/// injected faults themselves are simulation events, recorded in the
/// ktrace ring the snapshot includes.
#[test]
fn faulty_migrate_with_same_fault_seed_is_bit_identical() {
    use simnet::{FaultPlan, FaultSite, FaultSpec};
    let plan = || {
        FaultPlan::seeded(0xDECAF)
            .with(FaultSpec::always(FaultSite::MidDumpCrash, 1))
            .with(FaultSpec::always(FaultSite::NfsOp, 2))
    };
    let first = run_scenario_with(plan(), false);
    let second = run_scenario_with(plan(), false);
    assert!(
        first.contains(" fault "),
        "injected faults must appear in the ktrace snapshot:\n{first}"
    );
    assert_eq!(
        first, second,
        "two runs with the same fault seed diverged — injected faults must be deterministic"
    );
}

/// Cross-toggle extension of the faulty contract: the same seeded
/// fault plan with superblock translation on versus **off** must end
/// in bit-identical worlds. Stronger than the dual-run test above —
/// it pins the fused interpreter to the slot-by-slot trajectory even
/// when injected faults interrupt dumps mid-flight, and it holds
/// because every superblock pause, trap and fault lands on exactly
/// the instruction the slot loop would have produced.
#[test]
fn faulty_migrate_is_bit_identical_with_superblocks_toggled() {
    use simnet::{FaultPlan, FaultSite, FaultSpec};
    let plan = || {
        FaultPlan::seeded(0xDECAF)
            .with(FaultSpec::always(FaultSite::MidDumpCrash, 1))
            .with(FaultSpec::always(FaultSite::NfsOp, 2))
    };
    let cfg = |use_superblocks: bool| {
        let mut c = KernelConfig::paper();
        c.use_superblocks = use_superblocks;
        c
    };
    let fused = run_scenario_cfg(cfg(true), plan(), false);
    let slots = run_scenario_cfg(cfg(false), plan(), false);
    assert!(
        fused.contains(" fault "),
        "injected faults must appear in the ktrace snapshot:\n{fused}"
    );
    assert_eq!(
        fused, slots,
        "superblock toggle changed a faulty trajectory — the fused path leaked into guest-visible state"
    );
}

/// The same contract with the pre-copy engine in the loop: dirty-page
/// tracking, per-page streaming, the delta freeze, and the engine's
/// failure recovery must all be simulation events — two faulty pre-copy
/// runs with one seed end in bit-identical worlds.
fn run_precopy_scenario(faults: simnet::FaultPlan) -> String {
    use pmig::proto::{migrate_proto, Protocol};
    let mut w = World::new(KernelConfig::paper());
    w.faults = faults;
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    let obj = assemble(&pmig::workloads::dirty_hog_program(3_000, 10 * 0x2000)).unwrap();
    w.install_program(brick, "/bin/hog", &obj).unwrap();
    let victim = w.spawn_vm_proc(brick, "/bin/hog", None, alice()).unwrap();
    w.run_slices(10);
    let report = migrate_proto(&mut w, victim, brick, schooner, Protocol::PreCopy, alice())
        .expect("engine completes");
    format!("{:?}\n{}", report, common::snapshot_world(&w))
}

#[test]
fn faulty_precopy_with_same_fault_seed_is_bit_identical() {
    use simnet::{FaultPlan, FaultSite, FaultSpec};
    let plan = || {
        FaultPlan::seeded(0xC0FFEE)
            .with(FaultSpec::always(FaultSite::NfsOp, 3))
            .with(FaultSpec::always(FaultSite::MidDumpCrash, 1))
    };
    let first = run_precopy_scenario(plan());
    let second = run_precopy_scenario(plan());
    assert!(
        first.contains(" fault "),
        "injected faults must appear in the ktrace snapshot:\n{first}"
    );
    assert_eq!(
        first, second,
        "two pre-copy runs with the same fault seed diverged"
    );
}
