//! Wake-semantics parity between the two schedulers.
//!
//! The event scheduler (`Sched::Event`, the default) must reproduce the
//! reference scan's trajectory **bit-identically**: same wake order,
//! same clock charges, same ktrace records, same terminal transcripts.
//! Its design invariant is that over-poking is harmless (a false wake
//! condition evaluates to no action, exactly as under the scan) while a
//! *missed* poke would stall a wakeup the scan would have seen — so any
//! divergence here points at a mutation site without a poke hook.
//!
//! The scenario is a cluster of 100+ hosts exercising every wait class
//! at once: sleep expiry, alarm expiry mid-sleep, tty reads woken by
//! typed input / close / SIGINT, pipe readers woken by writes, parents
//! in `wait()`, rsh/run_local remote completions, and a full
//! daemon-scripted migration — plus a faulty variant, since injected
//! faults are simulation events the parity must cover too.

use m68vm::{assemble, IsaLevel};
use sysdefs::{Credentials, Gid, Uid, Signal};
use tty::TtyHandle;
use ukernel::{KernelConfig, Sched, World};
use vfs::InodeKind;

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

/// Number of numbered hosts; the migrate pair (`brick`, `schooner`)
/// rides on top, so the world holds `HOSTS + 2 >= 100` machines.
const HOSTS: usize = 104;

/// pipe() + fork(): the child blocks reading the empty pipe, the parent
/// sleeps, writes four bytes (waking the child), then reaps it.
const PIPE_PING_PROGRAM: &str = r#"
start:  move.l  #42, d0     | pipe()
        trap    #0
        move.l  d0, d5
        and.l   #0xffff, d5 | read end
        move.l  d0, d6
        lsr.l   #16, d6     | write end
        move.l  #2, d0      | fork
        trap    #0
        tst.l   d0
        beq     child
        move.l  #150, d0    | parent: sleep before writing, so the
        move.l  #3000, d1   | child is parked in PipeWait by then
        trap    #0
        move.l  #4, d0      | write 4 bytes: wakes the blocked reader
        move.l  d6, d1
        move.l  #msg, d2
        move.l  #4, d3
        trap    #0
        move.l  #7, d0      | wait() for the child
        move.l  #0, d1
        trap    #0
        move.l  #1, d0      | exit(0)
        move.l  #0, d1
        trap    #0
child:  move.l  #3, d0      | read pipe: blocks until the parent writes
        move.l  d5, d1
        move.l  #buf, d2
        move.l  #4, d3
        trap    #0
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
        .data
msg:    .byte   'p'
        .byte   'o'
        .byte   'k'
        .byte   'e'
        .bss
buf:    .space  8
"#;

/// Two consecutive sleeps, then exit: pure timer-heap wakeups.
const SLEEPER_PROGRAM: &str = r#"
start:  move.l  #150, d0
        move.l  #2000, d1
        trap    #0
        move.l  #150, d0
        move.l  #2500, d1
        trap    #0
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
"#;

/// alarm(1s) then a 2s sleep: SIGALRM fires mid-sleep and terminates
/// the process (default action), exercising the alarm-before-wake
/// ordering of the wake pass.
const ALARM_PROGRAM: &str = r#"
start:  move.l  #27, d0     | alarm(1)
        move.l  #1, d1
        trap    #0
        move.l  #150, d0    | sleep 2s; SIGALRM lands at 1s
        move.l  #2000000, d1
        trap    #0
        move.l  #1, d0      | never reached
        move.l  #0, d1
        trap    #0
"#;

/// Runs the cluster scenario under `sched` and renders the final world
/// into one canonical string (same shape as tests/determinism.rs).
fn run_scenario(sched: Sched, faults: simnet::FaultPlan, require_success: bool) -> String {
    let mut cfg = KernelConfig::paper();
    cfg.sched = sched;
    let mut w = World::new(cfg);
    w.faults = faults;

    let hog = assemble(&pmig::workloads::cpu_hog_program(20)).unwrap();
    let pipe_ping = assemble(PIPE_PING_PROGRAM).unwrap();
    let sleeper = assemble(SLEEPER_PROGRAM).unwrap();
    let alarmer = assemble(ALARM_PROGRAM).unwrap();
    let testprog = assemble(pmig::workloads::TEST_PROGRAM).unwrap();
    let waiting_parent = assemble(pmig::workloads::WAITING_PARENT_PROGRAM).unwrap();

    let mut consoles: Vec<(String, TtyHandle)> = Vec::new();
    // Tty-blocked readers to feed, close, or interrupt later.
    let mut tty_readers = Vec::new();
    let mut interrupt_targets = Vec::new();

    for i in 0..HOSTS {
        let name = format!("h{i:03}");
        let mid = w.add_machine(&name, IsaLevel::Isa1);
        match i % 8 {
            0 => {
                w.install_program(mid, "/bin/hog", &hog).unwrap();
                w.spawn_vm_proc(mid, "/bin/hog", None, alice()).unwrap();
            }
            1 => {
                w.install_program(mid, "/bin/pipeping", &pipe_ping).unwrap();
                w.spawn_vm_proc(mid, "/bin/pipeping", None, alice()).unwrap();
            }
            2 => {
                w.install_program(mid, "/bin/sleeper", &sleeper).unwrap();
                w.spawn_vm_proc(mid, "/bin/sleeper", None, alice()).unwrap();
            }
            3 => {
                w.install_program(mid, "/bin/alarmer", &alarmer).unwrap();
                w.spawn_vm_proc(mid, "/bin/alarmer", None, alice()).unwrap();
            }
            4 => {
                w.install_program(mid, "/bin/testprog", &testprog).unwrap();
                let (tty, console) = w.add_terminal(mid);
                let pid = w
                    .spawn_vm_proc(mid, "/bin/testprog", Some(tty), alice())
                    .unwrap();
                consoles.push((name, console));
                if i % 16 == 4 {
                    interrupt_targets.push((mid, pid));
                } else {
                    tty_readers.push(consoles.len() - 1);
                }
            }
            5 => {
                w.install_program(mid, "/bin/waiter", &waiting_parent).unwrap();
                let (tty, console) = w.add_terminal(mid);
                w.spawn_vm_proc(mid, "/bin/waiter", Some(tty), alice())
                    .unwrap();
                consoles.push((name, console));
                tty_readers.push(consoles.len() - 1);
            }
            6 => {
                // Native worker: a local child, a sleep, then a remote
                // command on the next host — RemoteWait both ways.
                let peer = format!("h{:03}", i + 1);
                w.spawn_native_proc(
                    mid,
                    "worker",
                    None,
                    alice(),
                    Box::new(move |sys| {
                        let _ = sys.sleep_us(1_500);
                        let _ = sys.run_local("localchild", |s| {
                            let _ = s.compute(500);
                            0
                        });
                        sys.rsh(&peer, "remotechild", |s| {
                            let _ = s.sleep_us(700);
                            7
                        })
                        .unwrap_or(111)
                    }),
                );
            }
            _ => {} // Idle host: exercises ready-index eviction.
        }
    }

    // The Figure-4 migrate pair on top of the numbered hosts.
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    w.install_program(brick, "/bin/testprog", &testprog).unwrap();
    let (vtty, victim_console) = w.add_terminal(brick);
    let victim = w
        .spawn_vm_proc(brick, "/bin/testprog", Some(vtty), alice())
        .unwrap();
    consoles.push(("victim".into(), victim_console));

    w.run_slices(60_000);

    // Host-side pokes between runs: typed input, SIGINT, then EOF.
    for &ci in &tty_readers {
        consoles[ci].1.type_input("ping\n");
    }
    for &(mid, pid) in &interrupt_targets {
        w.host_post_signal(mid, pid, Signal::SIGINT);
    }
    w.run_slices(60_000);
    for &ci in &tty_readers {
        consoles[ci].1.with(|t| t.close());
    }
    w.run_slices(60_000);

    // The remote-command migrate with the most moving parts, pulled
    // across the cluster while the background workload drains.
    let cmd = w.spawn_native_proc(
        schooner,
        "migrate",
        None,
        alice(),
        Box::new(move |sys| match pmig::migrate(sys, victim, "brick", "schooner") {
            Ok(status) => status,
            Err(e) => e.as_u16() as u32,
        }),
    );
    let info = w
        .run_until_exit(schooner, cmd, 30_000_000)
        .expect("migrate command exits");
    if require_success {
        assert_eq!(info.status, 0, "migrate must succeed");
    }
    w.run_slices(400_000);

    snapshot(&w, &consoles)
}

/// A canonical textual dump of the whole cluster (the shape of
/// tests/determinism.rs, over every machine and console).
fn snapshot(w: &World, consoles: &[(String, TtyHandle)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for mid in 0..w.machine_count() {
        let m = w.machine(mid);
        writeln!(
            out,
            "machine {mid} {} now={}us busy={}us",
            m.name,
            m.now.as_micros(),
            m.busy.as_micros()
        )
        .unwrap();
        let s = &m.stats;
        writeln!(
            out,
            "  stats sys={} ctx={} sig={} rpc={} fork={} exec={} dump={} rest={} faults={}",
            s.syscalls,
            s.ctx_switches,
            s.signals,
            s.nfs_rpcs,
            s.forks,
            s.execs,
            s.dumps,
            s.restores,
            s.faults_injected
        )
        .unwrap();
        for (pid, p) in &m.procs {
            writeln!(
                out,
                "  proc {pid} comm={} state={:?} utime={}us stime={}us",
                p.comm,
                p.state,
                p.utime.as_micros(),
                p.stime.as_micros()
            )
            .unwrap();
        }
        writeln!(out, "  fs_hash={:#018x}", fs_tree_hash(&m.fs)).unwrap();
        writeln!(
            out,
            "  ktrace seq={} dropped={}",
            m.ktrace.seq, m.ktrace.dropped
        )
        .unwrap();
        for r in m.ktrace.records() {
            writeln!(out, "  kt {}", r.render()).unwrap();
        }
    }
    for (&(mid, pid), info) in &w.finished {
        writeln!(
            out,
            "exit m{mid} pid={pid} status={} cpu={}us",
            info.status,
            info.cpu().as_micros()
        )
        .unwrap();
    }
    for (name, console) in consoles {
        writeln!(out, "tty {name}:\n{}", console.output_text()).unwrap();
    }
    out
}

fn fs_tree_hash(fs: &vfs::Filesystem) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h = FNV_OFFSET;
    hash_dir(fs, fs.root(), "/", &mut h);
    h
}

fn fnv_bytes(h: &mut u64, bytes: &[u8]) {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn hash_dir(fs: &vfs::Filesystem, dir: vfs::Ino, path: &str, h: &mut u64) {
    for name in fs.readdir(dir).unwrap() {
        let ino = fs.lookup(dir, &name).unwrap();
        let node = fs.inode(ino).unwrap();
        let child = format!("{path}{name}");
        fnv_bytes(h, child.as_bytes());
        fnv_bytes(h, &node.mode.0.to_be_bytes());
        fnv_bytes(h, &node.uid.0.to_be_bytes());
        match &node.kind {
            InodeKind::Regular(data) => {
                fnv_bytes(h, b"F");
                fnv_bytes(h, data);
            }
            InodeKind::Directory(_) => {
                fnv_bytes(h, b"D");
                hash_dir(fs, ino, &format!("{child}/"), h);
            }
            InodeKind::Symlink(target) => {
                fnv_bytes(h, b"L");
                fnv_bytes(h, target.as_bytes());
            }
            InodeKind::Device(_) => fnv_bytes(h, b"C"),
        }
    }
}

#[test]
fn event_scheduler_matches_scan_bit_for_bit() {
    let event = run_scenario(Sched::Event, simnet::FaultPlan::none(), true);
    assert!(
        event.contains("machine 104 brick") && event.contains("dump"),
        "snapshot looks degenerate:\n{}",
        &event[..event.len().min(4000)]
    );
    let event2 = run_scenario(Sched::Event, simnet::FaultPlan::none(), true);
    assert_eq!(
        event, event2,
        "two event-scheduler runs diverged at cluster scale"
    );
    let scan = run_scenario(Sched::Scan, simnet::FaultPlan::none(), true);
    assert_eq!(
        scan, event,
        "event scheduler diverged from the reference scan"
    );
}

#[test]
fn faulty_runs_match_across_schedulers() {
    use simnet::{FaultPlan, FaultSite, FaultSpec};
    let plan = || {
        FaultPlan::seeded(0xFEED)
            .with(FaultSpec::always(FaultSite::MidDumpCrash, 1))
            .with(FaultSpec::always(FaultSite::NfsOp, 2))
    };
    let event = run_scenario(Sched::Event, plan(), false);
    assert!(
        event.contains(" fault "),
        "injected faults must appear in the snapshot"
    );
    let event2 = run_scenario(Sched::Event, plan(), false);
    assert_eq!(event, event2, "faulty event runs diverged");
    let scan = run_scenario(Sched::Scan, plan(), false);
    assert_eq!(
        scan, event,
        "faulty event run diverged from the reference scan"
    );
}
