//! Source-level audit: driver code stays on the World API.
//!
//! The sharded engine (`world/shard.rs`) is only sound if every
//! cross-machine effect flows through the seam layer, and the seam
//! layer can only account for effects that enter through the `World`
//! methods. A driver that grabs `machine_mut(..)` or pokes a process
//! directly mutates shard-resident state behind the window
//! bookkeeping's back — the 1-vs-N oracle would still catch the
//! divergence, but hours later and far from the cause.
//!
//! simlint's `cross-shard` rule polices the kernel crate itself; this
//! test extends the same contract to the out-of-crate drivers (the
//! bench scenarios, the `figures`/`simsh` binaries, and the pmig
//! command layer), where simlint does not look. The allowed surface
//! there is the read-only `machine(..)` accessor plus the World verbs
//! (`run_*`, `host_*`, `spawn_*`, terminals, faults).

use std::path::Path;

/// Mutable-access spellings drivers must not use. `machine_mut(` is
/// the front door; the rest are the same door by other names.
const FORBIDDEN: [&str; 4] = ["machine_mut(", ".machines[", "proc_mut(", "fs_mut("];

/// The driver trees: everything here must treat the world as opaque.
const DRIVER_ROOTS: [&str; 2] = ["crates/bench/src", "crates/pmig/src"];

fn scan_file(path: &Path, violations: &mut Vec<String>) {
    let text = std::fs::read_to_string(path).unwrap();
    for (idx, line) in text.lines().enumerate() {
        // Strip line comments so prose about the rule can't trip it.
        let code = line.split("//").next().unwrap_or(line);
        for pat in FORBIDDEN {
            if code.contains(pat) {
                violations.push(format!("{}:{}: `{pat}` — {}", path.display(), idx + 1, line.trim()));
            }
        }
    }
}

fn scan_tree(dir: &Path, violations: &mut Vec<String>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            scan_tree(&path, violations);
        } else if path.extension().is_some_and(|e| e == "rs") {
            scan_file(&path, violations);
        }
    }
}

#[test]
fn drivers_never_take_mutable_machine_access() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    let mut scanned_any = false;
    for tree in DRIVER_ROOTS {
        let dir = root.join(tree);
        assert!(dir.is_dir(), "driver tree moved: {tree}");
        scanned_any = true;
        scan_tree(&dir, &mut violations);
    }
    assert!(scanned_any);
    assert!(
        violations.is_empty(),
        "driver code must reach machines through the World API, not mutate \
         them directly (route the effect through a World method so the seam \
         layer sees it):\n{}",
        violations.join("\n")
    );
}
