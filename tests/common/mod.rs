//! The shared determinism-snapshot builder.
//!
//! One canonical textual dump of a [`World`], folded field by field so
//! the dual-run tests are an *oracle*: any piece of simulated state
//! that can diverge between two runs of the same scenario must change
//! this string. simlint's `snapshot-coverage` rule enforces the
//! contract statically — every `World`/`Machine`/`MachineStats` field
//! is either mentioned here (or in another `snapshot*` builder) or
//! declared pure-cache in `simlint.toml` with a reason.

use ukernel::World;
use vfs::InodeKind;

/// Renders everything observable about the final world into one
/// canonical string.
pub fn snapshot_world(w: &World) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for mid in 0..w.machine_count() {
        let m = w.machine(mid);
        writeln!(
            out,
            "machine {} {} isa={:?} now={}us busy={}us last_run={:?} next_pid={}",
            m.id,
            m.name,
            m.isa,
            m.now.as_micros(),
            m.busy.as_micros(),
            m.last_run.map(|p| p.as_u32()),
            m.next_pid()
        )
        .unwrap();
        let s = &m.stats;
        writeln!(
            out,
            "  stats sys={} ctx={} sig={} rpc={} fork={} exec={} dump={} rest={} faults={} \
             precopy={} fetch={}",
            s.syscalls,
            s.ctx_switches,
            s.signals,
            s.nfs_rpcs,
            s.forks,
            s.execs,
            s.dumps,
            s.restores,
            s.faults_injected,
            s.pages_precopied,
            s.pages_fetched
        )
        .unwrap();
        for (name, agg) in &s.per_syscall {
            writeln!(
                out,
                "  agg {name} n={} total={}us max={}us",
                agg.count, agg.total_us, agg.max_us
            )
            .unwrap();
        }
        for (pid, p) in &m.procs {
            writeln!(
                out,
                "  proc {pid} ppid={} comm={} state={:?} sig={:#x} alarm={:?} \
                 utime={}us stime={}us start={}us",
                p.ppid.as_u32(),
                p.comm,
                p.state,
                p.sig_pending,
                p.alarm_at.map(|t| t.as_micros()),
                p.utime.as_micros(),
                p.stime.as_micros(),
                p.start_time.as_micros()
            )
            .unwrap();
        }
        writeln!(
            out,
            "  rq=[{}]",
            m.run_queue
                .iter()
                .map(|p| p.as_u32().to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
        .unwrap();
        for (idx, f) in m.files.iter() {
            writeln!(
                out,
                "  file {idx} rc={} flags={:#x} off={} touched={} kind={:?} path={:?}",
                f.refcount, f.flags.0, f.offset, f.touched, f.kind, f.path
            )
            .unwrap();
        }
        for (host, peer) in &m.mounts {
            writeln!(out, "  mount {host}=m{peer}").unwrap();
        }
        for (i, slot) in m.pipes.iter().enumerate() {
            if let Some(p) = slot {
                let mut h = FNV_OFFSET;
                let (a, b) = p.data.as_slices();
                fnv_bytes(&mut h, a);
                fnv_bytes(&mut h, b);
                writeln!(
                    out,
                    "  pipe {i} r={} w={} len={} data={h:#018x}",
                    p.readers,
                    p.writers,
                    p.data.len()
                )
                .unwrap();
            }
        }
        for (i, slot) in m.sockets.iter().enumerate() {
            if let Some(sp) = slot {
                for (side, b) in sp.bufs.iter().enumerate() {
                    let mut h = FNV_OFFSET;
                    let (x, y) = b.data.as_slices();
                    fnv_bytes(&mut h, x);
                    fnv_bytes(&mut h, y);
                    writeln!(
                        out,
                        "  sock {i}.{side} r={} w={} len={} data={h:#018x}",
                        b.readers,
                        b.writers,
                        b.data.len()
                    )
                    .unwrap();
                }
            }
        }
        writeln!(
            out,
            "  exec_mig flag={} stack_len={} peak={} n_dir={} dev_dir={} dump_dir={}",
            m.exec_mig_flag,
            m.exec_mig_stack.len(),
            m.name_bytes_peak,
            m.n_dir,
            m.dev_dir,
            m.dump_dir
        )
        .unwrap();
        writeln!(
            out,
            "  timing execve={:?} rest={:?} caller={:?}",
            m.last_execve, m.last_rest_proc, m.last_rest_caller
        )
        .unwrap();
        writeln!(out, "  warm=[{}]", {
            let v: Vec<&str> = m.warm_paths.iter().map(String::as_str).collect();
            v.join(",")
        })
        .unwrap();
        writeln!(out, "  fs_hash={:#018x}", fs_tree_hash(&m.fs)).unwrap();
        // The whole trace ring is part of the contract: identical runs
        // must cut identical records in identical order.
        writeln!(
            out,
            "  ktrace seq={} dropped={}",
            m.ktrace.seq, m.ktrace.dropped
        )
        .unwrap();
        for r in m.ktrace.records() {
            writeln!(out, "  kt {}", r.render()).unwrap();
        }
    }
    writeln!(
        out,
        "ether frames={} bytes={} msgs={}",
        w.ether.frames_sent, w.ether.bytes_sent, w.ether.messages_sent
    )
    .unwrap();
    writeln!(out, "faults injected={}", w.faults.injected).unwrap();
    for (&(mid, pid), info) in &w.finished {
        writeln!(
            out,
            "exit m{mid} pid={pid} status={} cpu={}us",
            info.status,
            info.cpu().as_micros()
        )
        .unwrap();
    }
    for (&(mid, pid), comm) in &w.overlaid {
        writeln!(out, "overlaid m{mid} pid={pid} comm={comm}").unwrap();
    }
    for &(mid, pid) in w.daemon_waiters() {
        writeln!(out, "daemon_wait m{mid} pid={pid}").unwrap();
    }
    for (id, t) in w.terminals().iter().enumerate() {
        writeln!(out, "tty {id}:\n{}", t.output_text()).unwrap();
    }
    out
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv_bytes(h: &mut u64, bytes: &[u8]) {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// FNV-1a over a canonical depth-first walk of a filesystem tree:
/// names, inode metadata, and file contents all feed the hash, so any
/// divergence anywhere in either machine's tree changes the digest.
pub fn fs_tree_hash(fs: &vfs::Filesystem) -> u64 {
    let mut h = FNV_OFFSET;
    hash_dir(fs, fs.root(), "/", &mut h);
    h
}

fn hash_dir(fs: &vfs::Filesystem, dir: vfs::Ino, path: &str, h: &mut u64) {
    // readdir is BTreeMap-backed, so this walk order is itself part of
    // the determinism contract.
    for name in fs.readdir(dir).unwrap() {
        let ino = fs.lookup(dir, &name).unwrap();
        let node = fs.inode(ino).unwrap();
        let child = format!("{path}{name}");
        fnv_bytes(h, child.as_bytes());
        fnv_bytes(h, &node.mode.0.to_be_bytes());
        fnv_bytes(h, &node.uid.0.to_be_bytes());
        match &node.kind {
            InodeKind::Regular(data) => {
                fnv_bytes(h, b"F");
                fnv_bytes(h, data);
            }
            InodeKind::Directory(_) => {
                fnv_bytes(h, b"D");
                hash_dir(fs, ino, &format!("{child}/"), h);
            }
            InodeKind::Symlink(target) => {
                fnv_bytes(h, b"L");
                fnv_bytes(h, target.as_bytes());
            }
            InodeKind::Device(_) => fnv_bytes(h, b"C"),
        }
    }
}
