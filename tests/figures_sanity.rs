//! Shape assertions for every figure in the paper's evaluation: who
//! wins, by roughly what factor. Exact simulated numbers are recorded in
//! EXPERIMENTS.md; these bands keep the reproduction honest as the code
//! evolves.

#[test]
fn figure1_modified_syscall_overhead_band() {
    let rows = bench::fig1();
    assert_eq!(rows.len(), 2);
    let oc = &rows[0];
    assert!(oc.syscall.contains("open"));
    assert!(
        (1.30..=1.60).contains(&oc.ratio),
        "open/close overhead should be ~44%, got {:.2}",
        oc.ratio
    );
    let cd = &rows[1];
    assert!(cd.syscall.contains("chdir"));
    assert!(
        (1.20..=1.50).contains(&cd.ratio),
        "chdir overhead should be ~36%, got {:.2}",
        cd.ratio
    );
    // The modified kernel is never faster.
    assert!(oc.modified_ms > oc.original_ms);
    assert!(cd.modified_ms > cd.original_ms);
}

#[test]
fn figure2_dump_ratios_band() {
    let rows = bench::fig2();
    assert_eq!(rows.len(), 3);
    let sigdump = &rows[1];
    assert_eq!(sigdump.case, "SIGDUMP");
    assert!(
        (2.2..=3.8).contains(&sigdump.cpu_ratio),
        "SIGDUMP ~3x SIGQUIT cpu, got {:.2}",
        sigdump.cpu_ratio
    );
    assert!(
        (2.2..=3.8).contains(&sigdump.real_ratio),
        "SIGDUMP ~3x SIGQUIT real, got {:.2}",
        sigdump.real_ratio
    );
    let dumpproc = &rows[2];
    assert_eq!(dumpproc.case, "dumpproc");
    assert!(
        (3.0..=5.5).contains(&dumpproc.cpu_ratio),
        "dumpproc ~4x SIGQUIT cpu, got {:.2}",
        dumpproc.cpu_ratio
    );
    assert!(
        (4.5..=8.0).contains(&dumpproc.real_ratio),
        "dumpproc ~6x SIGQUIT real, got {:.2}",
        dumpproc.real_ratio
    );
    // The paper's anchor: "about 0.6 seconds for killing our particular
    // test program with SIGDUMP" — same order of magnitude here.
    assert!(
        (200.0..=1500.0).contains(&sigdump.real_ms),
        "SIGDUMP should take a fraction of a second, got {:.0} ms",
        sigdump.real_ms
    );
    // dumpproc's real time is dominated by its 1-second poll sleep.
    assert!(dumpproc.real_ms > 1000.0);
}

#[test]
fn figure3_restart_ratios_band() {
    let rows = bench::fig3();
    assert_eq!(rows.len(), 3);
    let rest_proc = &rows[1];
    assert_eq!(rest_proc.case, "rest_proc()");
    assert!(
        (1.0..=1.6).contains(&rest_proc.cpu_ratio),
        "rest_proc only slightly above execve (cpu), got {:.2}",
        rest_proc.cpu_ratio
    );
    assert!(
        (1.0..=1.6).contains(&rest_proc.real_ratio),
        "rest_proc only slightly above execve (real), got {:.2}",
        rest_proc.real_ratio
    );
    let restart = &rows[2];
    assert_eq!(restart.case, "restart");
    assert!(
        (3.5..=6.5).contains(&restart.cpu_ratio),
        "restart ~5x execve cpu, got {:.2}",
        restart.cpu_ratio
    );
    assert!(
        restart.real_ratio >= 3.0,
        "restart several times execve real, got {:.2}",
        restart.real_ratio
    );
    // "For our test program [execve] was less than 0.2 seconds".
    assert!(rows[0].real_ms < 200.0);
}

#[test]
fn figure4_migrate_ratios_band() {
    let rows = bench::fig4();
    assert_eq!(rows.len(), 5);
    let by_case = |name: &str| {
        rows.iter()
            .find(|r| r.case == name)
            .unwrap_or_else(|| panic!("missing case {name}"))
    };
    let ll = by_case("L-L");
    let lr = by_case("L-R");
    let rl = by_case("R-L");
    let rr = by_case("R-R");
    // Local-local is about the same as running the two commands by hand.
    assert!(
        (0.7..=2.0).contains(&ll.ratio),
        "L-L near the baseline, got {:.2}",
        ll.ratio
    );
    // One rsh session in the middle cases, two in R-R.
    assert!(lr.ratio > 3.0 && rl.ratio > 3.0);
    assert!(
        (8.0..=14.0).contains(&rr.ratio),
        "R-R 'as much as ten times more', got {:.2}",
        rr.ratio
    );
    assert!(rr.ratio > lr.ratio && rr.ratio > rl.ratio);
    assert!(lr.ratio > ll.ratio);
    // "For our test program, this amounts to almost half a minute."
    assert!(
        (12_000.0..=35_000.0).contains(&rr.real_ms),
        "R-R near half a minute, got {:.0} ms",
        rr.real_ms
    );
}

#[test]
fn ablation_daemon_beats_rsh() {
    let rows = bench::ablation_daemon();
    let rsh = rows.iter().find(|r| r.transport == "rsh").unwrap();
    let daemon = rows.iter().find(|r| r.transport == "daemon").unwrap();
    assert!(
        rsh.real_ms > 3.0 * daemon.real_ms,
        "daemon must be several times faster: rsh {:.0} vs daemon {:.0}",
        rsh.real_ms,
        daemon.real_ms
    );
}

#[test]
fn ablation_virtualization_fixes_pid_programs() {
    let rows = bench::ablation_virt();
    let stock = rows.iter().find(|r| r.kernel == "stock").unwrap();
    let virt = rows.iter().find(|r| r.kernel == "virtualized").unwrap();
    assert_eq!(stock.status, 3, "stock kernel: the program loses its file");
    assert_eq!(virt.status, 0, "virtualized kernel: the program survives");
}

#[test]
fn ablation_fixed_name_strings_waste_memory() {
    let rows = bench::ablation_names();
    let dynamic = rows.iter().find(|r| r.strategy == "dynamic").unwrap();
    let fixed = rows.iter().find(|r| r.strategy.contains("fixed")).unwrap();
    assert!(
        fixed.peak_bytes > 20 * dynamic.peak_bytes,
        "fixed-size strings pin far more kernel memory ({} vs {}), \
         which is §5.1's argument for dynamic allocation",
        fixed.peak_bytes,
        dynamic.peak_bytes
    );
}
