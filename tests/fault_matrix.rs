//! The failure-atomicity contract under corruption and injected faults.
//!
//! The invariant (ISSUE 5, after Milanés et al.): a migration, however
//! it fails, must leave **exactly one** live copy of the process —
//! source or target, never neither, never both — and must not strand
//! dump files in `/usr/tmp`.
//!
//! Three angles:
//! * a corruption matrix for `restart` — every way a dump file can lie
//!   (bad magic, truncated body, fd-count/stack-length mismatch, torn
//!   write from an injected mid-dump crash) fails cleanly with the
//!   right errno and leaves no process or descriptor residue;
//! * the orphan-dump reaper sweeps exactly the `a.outXXXXX` /
//!   `filesXXXXX` / `stackXXXXX` triples and nothing else;
//! * the full soak matrix (every injection site × a remote-remote
//!   `migrate`) holds the one-live-copy / zero-dumps invariant.

use m68vm::{assemble, IsaLevel};
use simnet::{FaultPlan, FaultSite, FaultSpec};
use simtime::SimDuration;
use sysdefs::{Credentials, Errno, Gid, Pid, Uid};
use ukernel::{KernelConfig, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

/// One machine with the §6.2 test program stopped at its first prompt.
fn world_with_victim() -> (World, usize, Pid) {
    let mut w = World::new(KernelConfig::paper());
    let m = w.add_machine("brick", IsaLevel::Isa1);
    let obj = assemble(pmig::workloads::TEST_PROGRAM).unwrap();
    w.install_program(m, "/bin/testprog", &obj).unwrap();
    let (tty, _handle) = w.add_terminal(m);
    let victim = w
        .spawn_vm_proc(m, "/bin/testprog", Some(tty), alice())
        .unwrap();
    w.run_slices(50_000);
    (w, m, victim)
}

/// [`world_with_victim`] plus a completed `dumpproc`, so the three dump
/// files sit in `/usr/tmp` ready to be corrupted.
fn dumped_world() -> (World, usize, Pid) {
    let (mut w, m, victim) = world_with_victim();
    let status = pmig::api::run_dumpproc(&mut w, m, victim, alice()).unwrap();
    assert_eq!(status, 0, "clean dumpproc must succeed");
    (w, m, victim)
}

/// Applies `corrupt` to the dump files, runs `restart`, and checks it
/// fails with exactly `want` — leaving no half-restarted process behind
/// and the dump files still in place for a later recovery attempt.
fn restart_must_fail(corrupt: impl FnOnce(&mut World, usize, &dumpfmt::DumpFileNames), want: Errno) {
    let (mut w, m, victim) = dumped_world();
    let names = dumpfmt::dump_file_names(victim);
    corrupt(&mut w, m, &names);
    let err = pmig::api::run_restart(
        &mut w,
        m,
        pmig::RestartArgs {
            pid: victim,
            dump_host: None,
            demand: false,
        },
        None,
        alice(),
    )
    .expect_err("restart of corrupt dumps must fail");
    match err {
        pmig::MigrationError::Failed(status) => {
            assert_eq!(status, want.as_u16() as u32, "wrong errno for this corruption");
        }
        other => panic!("unexpected failure mode: {other}"),
    }
    assert!(
        w.machine(m)
            .procs
            .values()
            .all(|p| p.comm != "restart" && !p.comm.starts_with("a.out")),
        "a failed restart must leave no process residue"
    );
    // restart never deletes dumps — that is migrate's job, and only
    // after it has settled where the live copy is.
    assert!(w.host_read_file(m, &names.a_out).is_ok());
    assert!(w.host_read_file(m, &names.files).is_ok());
    assert!(w.host_read_file(m, &names.stack).is_ok());
}

fn patch(w: &mut World, m: usize, path: &str, f: impl FnOnce(Vec<u8>) -> Vec<u8>) {
    let bytes = w.host_read_file(m, path).unwrap();
    let bytes = f(bytes);
    w.host_write_file(m, path, &bytes).unwrap();
}

#[test]
fn restart_rejects_bad_aout_magic() {
    restart_must_fail(
        |w, m, names| {
            patch(w, m, &names.a_out, |mut b| {
                b[0] ^= 0xff;
                b
            })
        },
        Errno::ENOEXEC,
    );
}

#[test]
fn restart_rejects_truncated_aout_body() {
    // The header survives, the text/data segments do not: restart's own
    // magic check passes and rest_proc's full parse catches the tear.
    restart_must_fail(
        |w, m, names| {
            patch(w, m, &names.a_out, |mut b| {
                b.truncate(40);
                b
            })
        },
        Errno::ENOEXEC,
    );
}

#[test]
fn restart_rejects_bad_files_magic() {
    restart_must_fail(
        |w, m, names| {
            patch(w, m, &names.files, |mut b| {
                b[1] ^= 0xff;
                b
            })
        },
        Errno::EINVAL,
    );
}

#[test]
fn restart_rejects_truncated_files_body() {
    restart_must_fail(
        |w, m, names| {
            patch(w, m, &names.files, |mut b| {
                b.truncate(b.len() - 3);
                b
            })
        },
        Errno::EINVAL,
    );
}

#[test]
fn restart_rejects_fd_count_mismatch() {
    // Inflate the on-wire fd count past the records actually present;
    // the decoder must read it as a truncation, not index off the end.
    restart_must_fail(
        |w, m, names| {
            patch(w, m, &names.files, |mut b| {
                let host_len = u16::from_be_bytes([b[2], b[3]]) as usize;
                let cwd_off = 4 + host_len;
                let cwd_len = u16::from_be_bytes([b[cwd_off], b[cwd_off + 1]]) as usize;
                let count_off = cwd_off + 2 + cwd_len;
                let count = u16::from_be_bytes([b[count_off], b[count_off + 1]]);
                b[count_off..count_off + 2].copy_from_slice(&(count + 5).to_be_bytes());
                b
            })
        },
        Errno::EINVAL,
    );
}

#[test]
fn restart_rejects_bad_stack_magic() {
    restart_must_fail(
        |w, m, names| {
            patch(w, m, &names.stack, |mut b| {
                b[1] ^= 0xff;
                b
            })
        },
        Errno::EINVAL,
    );
}

#[test]
fn restart_rejects_stack_length_mismatch() {
    // The credentials header is intact, so restart's user-level peek
    // passes; the kernel's full decode inside rest_proc must flag the
    // inflated stack length as a truncated file.
    restart_must_fail(
        |w, m, names| {
            patch(w, m, &names.stack, |mut b| {
                let len_off = 2 + 16;
                let len = u32::from_be_bytes([b[len_off], b[len_off + 1], b[len_off + 2], b[len_off + 3]]);
                b[len_off..len_off + 4].copy_from_slice(&(len + 100).to_be_bytes());
                b
            })
        },
        Errno::ENOEXEC,
    );
}

#[test]
fn torn_write_from_injected_mid_dump_crash_fails_cleanly() {
    let (mut w, m, victim) = world_with_victim();
    w.faults = FaultPlan::seeded(7).with(FaultSpec::always(FaultSite::MidDumpCrash, 1));
    let status = pmig::api::run_dumpproc(&mut w, m, victim, alice()).unwrap();
    // The injected crash tears one of the three files mid-write. Which
    // one decides what dumpproc sees (a missing file, a corrupt table,
    // or — when the stack tore — nothing at all); every branch must
    // fail cleanly downstream.
    if status != 0 {
        assert!(
            w.proc_ref(m, victim).is_some(),
            "the kernel must not kill a process it could not save"
        );
    }
    let r = pmig::api::run_restart(
        &mut w,
        m,
        pmig::RestartArgs {
            pid: victim,
            dump_host: None,
            demand: false,
        },
        None,
        alice(),
    );
    match r {
        Err(pmig::MigrationError::Failed(s)) => assert_ne!(s, 0),
        Err(other) => panic!("unexpected failure mode: {other}"),
        Ok(pid) => panic!("restart of a torn dump must not succeed (got pid {pid})"),
    }
    assert!(
        w.machine(m)
            .procs
            .values()
            .all(|p| !p.comm.starts_with("a.out")),
        "no half-restarted residue"
    );
    // The reaper clears whatever the tear left behind; a second sweep
    // finds nothing.
    w.host_reap_orphan_dumps(m);
    assert!(w.host_reap_orphan_dumps(m).is_empty());
}

#[test]
fn dumpproc_times_out_when_dump_never_appears() {
    let (mut w, m, victim) = world_with_victim();
    // Every dump attempt dies of ENOSPC, so a.outXXXXX never appears;
    // the poll must give up on its simtime deadline instead of spinning
    // on ENOENT forever.
    w.faults = FaultPlan::seeded(1).with(FaultSpec::always(FaultSite::DumpEnospc, u32::MAX));
    let status = pmig::api::run_dumpproc(&mut w, m, victim, alice()).unwrap();
    assert_eq!(status, Errno::ETIMEDOUT.as_u16() as u32);
    assert!(w.proc_ref(m, victim).is_some(), "victim keeps running");
    // The ENOSPC path unlinks its own partial files.
    assert!(w.host_reap_orphan_dumps(m).is_empty());
}

#[test]
fn reaper_sweeps_only_orphan_dump_files() {
    let mut w = World::new(KernelConfig::paper());
    let m = w.add_machine("brick", IsaLevel::Isa1);
    w.host_write_file(m, "/usr/tmp/a.out00042", b"torn").unwrap();
    w.host_write_file(m, "/usr/tmp/files00042", b"torn").unwrap();
    w.host_write_file(m, "/usr/tmp/stack00042", b"").unwrap();
    w.host_write_file(m, "/usr/tmp/a.out-not-a-dump", b"keep")
        .unwrap();
    w.host_write_file(m, "/usr/tmp/notes.txt", b"keep").unwrap();
    let reaped = w.host_reap_orphan_dumps(m);
    assert_eq!(reaped, vec!["a.out00042", "files00042", "stack00042"]);
    assert!(w.host_read_file(m, "/usr/tmp/notes.txt").is_ok());
    assert!(w.host_read_file(m, "/usr/tmp/a.out-not-a-dump").is_ok());
    assert!(w.host_read_file(m, "/usr/tmp/a.out00042").is_err());
    assert!(w.host_reap_orphan_dumps(m).is_empty());
}

#[test]
fn loadbal_survives_target_down() {
    // Three machines, CPU hogs piled on node0, and a daemon transport
    // that never comes back: every balancing migration fails, yet every
    // job must still run to completion at the source and nothing may be
    // stranded in /usr/tmp.
    let mut w = World::new(KernelConfig::paper());
    let a = w.add_machine("node0", IsaLevel::Isa1);
    let _ = w.add_machine("node1", IsaLevel::Isa1);
    let _ = w.add_machine("node2", IsaLevel::Isa1);
    let obj = assemble(&pmig::workloads::cpu_hog_program(60)).unwrap();
    w.install_program(a, "/bin/hog", &obj).unwrap();
    let mut pids = Vec::new();
    for _ in 0..4 {
        pids.push(w.spawn_vm_proc(a, "/bin/hog", None, alice()).unwrap());
    }
    w.faults = FaultPlan::seeded(3).with(FaultSpec::always(FaultSite::Rsh, u32::MAX));
    let lb = apps::LoadBalancer {
        min_age: SimDuration::millis(100),
        imbalance_threshold: 2,
        cred: Credentials::root(),
    };
    let all_done = |w: &World| {
        (0..w.machine_count()).all(|m| {
            !w.machine(m)
                .procs
                .values()
                .any(|p| p.comm.contains("hog") || p.comm.starts_with("a.out"))
        })
    };
    let recs = lb.run_balanced(&mut w, 300_000, 200, all_done);
    assert!(
        recs.is_empty(),
        "no migration can succeed with the transport down"
    );
    for pid in pids {
        let info = w
            .finished
            .get(&(a, pid.as_u32()))
            .expect("every hog finishes at the source");
        assert_eq!(info.status, 0);
    }
    for m in 0..w.machine_count() {
        assert!(w.host_reap_orphan_dumps(m).is_empty());
    }
}

/// The protocol-engine half of the soak: every live-migration protocol
/// against every injection site it can meet — NFS drops, a mid-dump
/// crash, dump ENOSPC, and dropped demand page fetches — is 3 × 4 = 12
/// cases. However a case lands (migrated, aborted, recovered), the
/// invariant is the same: exactly one live copy, zero stranded dumps.
#[test]
fn protocol_matrix_preserves_failure_atomicity() {
    use pmig::proto::{migrate_proto, Protocol};

    let sites: [(&str, FaultSite, u32); 4] = [
        ("nfs", FaultSite::NfsOp, 3),
        ("middump", FaultSite::MidDumpCrash, 1),
        ("enospc", FaultSite::DumpEnospc, 1),
        ("page-fetch", FaultSite::PageFetch, 2),
    ];
    for proto in Protocol::ALL {
        for (label, site, budget) in sites {
            let case = format!("{}/{}", proto.name(), label);
            let mut w = World::new(KernelConfig::paper());
            let brick = w.add_machine("brick", IsaLevel::Isa1);
            let schooner = w.add_machine("schooner", IsaLevel::Isa1);
            // Long enough that the victim cannot finish by itself even
            // under the injected timeouts and the engine's backoffs.
            let obj = assemble(&pmig::workloads::dirty_hog_program(6_000, 10 * 0x2000)).unwrap();
            w.install_program(brick, "/bin/hog", &obj).unwrap();
            let victim = w.spawn_vm_proc(brick, "/bin/hog", None, alice()).unwrap();
            w.run_slices(10);
            w.faults = FaultPlan::seeded(0xD1CE).with(FaultSpec::always(site, budget));

            let report = migrate_proto(&mut w, victim, brick, schooner, proto, alice())
                .unwrap_or_else(|e| panic!("{case}: engine wedged: {e}"));
            assert_ne!(
                report.survivor,
                pmig::Survivor::Lost,
                "{case}: process lost ({report:?})"
            );
            // Page fetches only happen under demand-restore; every other
            // protocol must sail past an armed page-fetch fault.
            let injected: u64 = (0..w.machine_count())
                .map(|m| w.machine(m).stats.faults_injected)
                .sum();
            if site != FaultSite::PageFetch || proto == Protocol::Demand {
                assert!(injected >= 1, "{case}: the fault never fired");
            }

            // `find_restarted` matches `a.outXXXXX` comms only, which
            // the original (running as `hog`) never carries — so the
            // original and a restored incarnation can't double-count,
            // even when pid numbers collide across machines.
            let src_alive = w
                .proc_ref(brick, victim)
                .is_some_and(|p| !p.comm.starts_with("a.out"))
                && !w.finished.contains_key(&(brick, victim.as_u32()));
            let mut live = src_alive as usize;
            for m in [brick, schooner] {
                if let Some(p) = pmig::find_restarted(&w, m, victim) {
                    if w.proc_ref(m, p).is_some() && !w.finished.contains_key(&(m, p.as_u32())) {
                        live += 1;
                    }
                }
            }
            assert_eq!(live, 1, "{case}: {live} live copies ({report:?})");
            for m in 0..w.machine_count() {
                let stranded = w.host_reap_orphan_dumps(m);
                assert!(
                    stranded.is_empty(),
                    "{case}: dump files stranded on machine {m}: {stranded:?}"
                );
            }
        }
    }
}

#[test]
fn fault_soak_matrix_preserves_failure_atomicity() {
    for row in bench::fault_soak(0xF00D) {
        assert!(row.injected >= 1, "{}: the fault never fired", row.case);
        assert_eq!(
            row.live_copies, 1,
            "{}: failure atomicity broken — {} live copies (survivor={}, status={})",
            row.case, row.live_copies, row.survivor, row.status
        );
        assert_eq!(
            row.dumps_left, 0,
            "{}: {} dump files stranded in /usr/tmp",
            row.case, row.dumps_left
        );
        assert_ne!(row.survivor, "lost", "{}: process lost", row.case);
    }
}
