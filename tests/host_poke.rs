//! Regression tests for the PR-7 wake-poke fixes.
//!
//! PR 5's event scheduler shipped with a conservative `enter_run`
//! sweep: every run call poked every blocked process on every machine,
//! papering over any mutation site that lacked its own poke. That
//! sweep is now narrowed to the one genuinely hook-less host channel
//! (terminal handles), and the sites it was hiding — fork, execve
//! overlay, `alarm`, `sleep` — poke explicitly, enforced statically by
//! simlint's `wake-poke` rule. These tests pin the dynamic behavior:
//! each wait class must wake under the event scheduler and match the
//! reference scan bit-for-bit on the *full* superset snapshot, which
//! would have diverged (stalled clocks, stuck procs) were any of those
//! pokes missing.
//!
//! The last test is the snapshot-coverage oracle check: perturbing any
//! of the newly folded fields must change `common::snapshot_world`,
//! proving a divergence in them is no longer invisible to the
//! dual-run tests.

mod common;

use m68vm::{assemble, IsaLevel};
use sysdefs::{Credentials, Gid, Uid};
use ukernel::{KernelConfig, Sched, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

fn world(sched: Sched) -> World {
    let mut cfg = KernelConfig::paper();
    cfg.sched = sched;
    World::new(cfg)
}

/// Two sleeps then exit — wakes ride purely on the timer heap and the
/// deadline re-key `sys_sleep`'s poke performs.
const SLEEPER_PROGRAM: &str = r#"
start:  move.l  #150, d0
        move.l  #2000, d1
        trap    #0
        move.l  #150, d0
        move.l  #2500, d1
        trap    #0
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
"#;

/// alarm(1s) into a 2s sleep: SIGALRM terminates the sleeper at 1s,
/// exercising `sys_alarm`'s timer poke.
const ALARM_PROGRAM: &str = r#"
start:  move.l  #27, d0
        move.l  #1, d1
        trap    #0
        move.l  #150, d0
        move.l  #2000000, d1
        trap    #0
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
"#;

/// pipe() + fork(): the child blocks reading, the parent sleeps then
/// writes — fork's poke (new runnable child) and the pipe write's
/// queue poke both on the line.
const PIPE_PING_PROGRAM: &str = r#"
start:  move.l  #42, d0
        trap    #0
        move.l  d0, d5
        and.l   #0xffff, d5
        move.l  d0, d6
        lsr.l   #16, d6
        move.l  #2, d0
        trap    #0
        tst.l   d0
        beq     child
        move.l  #150, d0
        move.l  #3000, d1
        trap    #0
        move.l  #4, d0
        move.l  d6, d1
        move.l  #msg, d2
        move.l  #4, d3
        trap    #0
        move.l  #7, d0
        move.l  #0, d1
        trap    #0
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
child:  move.l  #3, d0
        move.l  d5, d1
        move.l  #buf, d2
        move.l  #4, d3
        trap    #0
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
        .data
msg:    .byte   'p'
        .byte   'o'
        .byte   'k'
        .byte   'e'
        .bss
buf:    .space  8
"#;

/// Runs `prog` to completion on a single machine under `sched` and
/// returns the superset snapshot. The machine is otherwise idle, so
/// every wake must come from the poke under test — there is no
/// background slice traffic to mask a stall.
fn run_program(sched: Sched, prog: &str) -> String {
    let mut w = world(sched);
    let mid = w.add_machine("host", IsaLevel::Isa1);
    let obj = assemble(prog).unwrap();
    w.install_program(mid, "/bin/prog", &obj).unwrap();
    let pid = w.spawn_vm_proc(mid, "/bin/prog", None, alice()).unwrap();
    let info = w
        .run_until_exit(mid, pid, 30_000_000)
        .expect("program exits — a stall here means a wake-poke went missing");
    assert_eq!(info.status, 0);
    common::snapshot_world(&w)
}

#[test]
fn sleep_wakes_without_the_conservative_sweep() {
    let event = run_program(Sched::Event, SLEEPER_PROGRAM);
    let scan = run_program(Sched::Scan, SLEEPER_PROGRAM);
    assert_eq!(scan, event, "sleep wake diverged between schedulers");
}

#[test]
fn alarm_fires_without_the_conservative_sweep() {
    let mut w = world(Sched::Event);
    let mid = w.add_machine("host", IsaLevel::Isa1);
    let obj = assemble(ALARM_PROGRAM).unwrap();
    w.install_program(mid, "/bin/prog", &obj).unwrap();
    let pid = w.spawn_vm_proc(mid, "/bin/prog", None, alice()).unwrap();
    // SIGALRM's default action kills the sleeper mid-sleep; exit status
    // is therefore nonzero, but the process must *finish*.
    w.run_until_exit(mid, pid, 30_000_000)
        .expect("alarm must fire on an otherwise-idle machine");
    let event = common::snapshot_world(&w);

    let mut w2 = world(Sched::Scan);
    let mid2 = w2.add_machine("host", IsaLevel::Isa1);
    w2.install_program(mid2, "/bin/prog", &obj).unwrap();
    let pid2 = w2.spawn_vm_proc(mid2, "/bin/prog", None, alice()).unwrap();
    w2.run_until_exit(mid2, pid2, 30_000_000).expect("scan run");
    assert_eq!(common::snapshot_world(&w2), event);
}

#[test]
fn fork_and_pipe_wake_without_the_conservative_sweep() {
    let event = run_program(Sched::Event, PIPE_PING_PROGRAM);
    let scan = run_program(Sched::Scan, PIPE_PING_PROGRAM);
    assert_eq!(scan, event, "fork/pipe wake diverged between schedulers");
    assert!(event.contains("fork=1"), "scenario must actually fork");
}

/// Typed terminal input arrives through the `TtyHandle`'s shared
/// `Arc<Mutex<Terminal>>` — the one host mutation the `World` cannot
/// hook. The narrowed `enter_run` covers it by poking registered tty
/// waiters at run entry; this pins that a reader parked across a run
/// boundary still wakes, identically under both schedulers.
#[test]
fn tty_input_between_runs_wakes_the_reader() {
    let run = |sched: Sched| {
        let mut w = world(sched);
        let mid = w.add_machine("host", IsaLevel::Isa1);
        let obj = assemble(pmig::workloads::TEST_PROGRAM).unwrap();
        w.install_program(mid, "/bin/testprog", &obj).unwrap();
        let (tty, console) = w.add_terminal(mid);
        let pid = w
            .spawn_vm_proc(mid, "/bin/testprog", Some(tty), alice())
            .unwrap();
        // Park the program at its prompt, then type from the host side
        // between run calls, then close for EOF.
        w.run_slices(50_000);
        console.type_input("ping\n");
        w.run_slices(50_000);
        console.with(|t| t.close());
        let info = w
            .run_until_exit(mid, pid, 30_000_000)
            .expect("tty reader must wake on host-typed input");
        (info.status, common::snapshot_world(&w))
    };
    let (status_e, event) = run(Sched::Event);
    let (status_s, scan) = run(Sched::Scan);
    assert_eq!(status_e, status_s);
    assert_eq!(scan, event, "tty wake diverged between schedulers");
}

/// Demand-restore parking: a demand-restarted process whose data pages
/// are absent faults on first touch, parks in the `PageWait` class, and
/// is woken by the kernel's page-fetch completion poke. An otherwise
/// idle pair of machines means every wake rides that poke alone — a
/// missing one stalls the event scheduler, and any charging difference
/// diverges from the reference scan on the full superset snapshot.
#[test]
fn demand_page_fault_parks_and_wakes_without_the_sweep() {
    let run = |sched: Sched| {
        let mut w = world(sched);
        let brick = w.add_machine("brick", IsaLevel::Isa1);
        let schooner = w.add_machine("schooner", IsaLevel::Isa1);
        let obj = assemble(&pmig::workloads::dirty_hog_program(50, 4 * 0x2000)).unwrap();
        w.install_program(brick, "/bin/hog", &obj).unwrap();
        let pid = w.spawn_vm_proc(brick, "/bin/hog", None, alice()).unwrap();
        w.run_slices(3);
        let status = pmig::api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
        assert_eq!(status, 0);
        let new_pid = pmig::api::run_restart(
            &mut w,
            schooner,
            pmig::RestartArgs {
                pid,
                dump_host: Some("brick".into()),
                demand: true,
            },
            None,
            alice(),
        )
        .expect("demand restart");
        let info = w
            .run_until_exit(schooner, new_pid, 60_000_000)
            .expect("the faulting hog must wake from PageWait and finish");
        assert_eq!(info.status, 0);
        (w.machine(schooner).stats.pages_fetched, common::snapshot_world(&w))
    };
    let (fetched_event, event) = run(Sched::Event);
    let (fetched_scan, scan) = run(Sched::Scan);
    assert!(fetched_event > 0, "the hog must actually page-fault");
    assert_eq!(fetched_event, fetched_scan);
    assert_eq!(scan, event, "page-fetch wake diverged between schedulers");
}

/// The snapshot-coverage half of the contract, checked dynamically:
/// perturbing each newly folded field must change the snapshot. Before
/// this PR every one of these edits left the oracle string untouched.
#[test]
fn snapshot_sees_the_newly_folded_fields() {
    let mut w = world(Sched::Event);
    let mid = w.add_machine("host", IsaLevel::Isa1);
    let base = common::snapshot_world(&w);

    let mut w2 = world(Sched::Event);
    let mid2 = w2.add_machine("host", IsaLevel::Isa1);
    assert_eq!(base, common::snapshot_world(&w2), "identical worlds match");

    w2.ether.frames_sent += 1;
    let after_ether = common::snapshot_world(&w2);
    assert_ne!(base, after_ether, "ether counters now folded");

    w2.machine_mut(mid2).exec_mig_flag = true;
    let after_flag = common::snapshot_world(&w2);
    assert_ne!(after_ether, after_flag, "exec_mig_flag now folded");

    w2.machine_mut(mid2).pipes.push(Some(Default::default()));
    let after_pipe = common::snapshot_world(&w2);
    assert_ne!(after_flag, after_pipe, "pipe slots now folded");

    w2.machine_mut(mid2).run_queue.push_back(sysdefs::Pid(99));
    let after_rq = common::snapshot_world(&w2);
    assert_ne!(after_pipe, after_rq, "run queue now folded");

    let _ = mid;
}

/// A fresh scan of `/usr/tmp` for dump artifacts, returning the pids
/// they belong to — the ground truth `Machine::pending_dumps` must
/// stay a superset of.
fn scan_dump_pids(w: &World, mid: usize) -> Vec<u32> {
    let m = w.machine(mid);
    let names = m.fs.readdir(m.dump_dir).expect("dump dir readable");
    let mut pids: Vec<u32> = names
        .iter()
        .filter_map(|n| {
            let s = ["a.out", "files", "stack", "delta"]
                .iter()
                .find_map(|p| n.strip_prefix(p))?;
            if s.len() == 5 && s.bytes().all(|b| b.is_ascii_digit()) {
                s.parse().ok()
            } else {
                None
            }
        })
        .collect();
    pids.sort_unstable();
    pids.dedup();
    pids
}

/// The incremental `pending_dumps` index against the directory truth:
/// a dump inserts the victim's pid, `host_reap_orphan_dumps` sweeps
/// exactly the indexed names and clears the index, and a guest that
/// creats/unlinks an artifact-shaped name through the ordinary
/// syscall funnel maintains the same index.
#[test]
fn pending_dumps_index_matches_a_fresh_scan() {
    let mut w = world(Sched::Event);
    let mid = w.add_machine("host", IsaLevel::Isa1);
    let obj = assemble(SLEEPER_PROGRAM).unwrap();
    w.install_program(mid, "/bin/prog", &obj).unwrap();
    let victim = w.spawn_vm_proc(mid, "/bin/prog", None, alice()).unwrap();
    assert!(w.machine(mid).pending_dump_pids().is_empty());
    assert!(scan_dump_pids(&w, mid).is_empty());

    let dumper = w.spawn_native_proc(
        mid,
        "dumpproc",
        None,
        alice(),
        Box::new(move |sys| match pmig::commands::dumpproc(sys, victim) {
            Ok(()) => 0,
            Err(e) => e.as_u16() as u32,
        }),
    );
    let info = w
        .run_until_exit(mid, dumper, 10_000_000)
        .expect("dumpproc exits");
    assert_eq!(info.status, 0, "dumpproc failed");
    assert_eq!(scan_dump_pids(&w, mid), vec![victim.as_u32()]);
    assert_eq!(w.machine(mid).pending_dump_pids(), vec![victim.as_u32()]);

    let reaped = w.host_reap_orphan_dumps(mid);
    assert_eq!(
        reaped,
        vec![
            format!("a.out{:05}", victim.as_u32()),
            format!("files{:05}", victim.as_u32()),
            format!("stack{:05}", victim.as_u32()),
        ]
    );
    assert!(scan_dump_pids(&w, mid).is_empty());
    assert!(w.machine(mid).pending_dump_pids().is_empty());
    assert!(w.host_reap_orphan_dumps(mid).is_empty());
}

/// creat(2)/unlink(2) on artifact-shaped names in `/usr/tmp` flow
/// through the same cross-call funnel as every other filesystem
/// mutation, so they maintain the index too.
#[test]
fn guest_creat_and_unlink_maintain_the_pending_index() {
    const CREAT_PROGRAM: &str = r#"
start:  move.l  #8, d0
        move.l  #fname, d1
        move.l  #384, d2
        trap    #0
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
        .data
fname:  .asciz  "/usr/tmp/stack00042"
"#;
    const UNLINK_PROGRAM: &str = r#"
start:  move.l  #10, d0
        move.l  #fname, d1
        trap    #0
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
        .data
fname:  .asciz  "/usr/tmp/stack00042"
"#;
    let mut w = world(Sched::Event);
    let mid = w.add_machine("host", IsaLevel::Isa1);
    let c = assemble(CREAT_PROGRAM).unwrap();
    w.install_program(mid, "/bin/c", &c).unwrap();
    let u = assemble(UNLINK_PROGRAM).unwrap();
    w.install_program(mid, "/bin/u", &u).unwrap();

    let p = w.spawn_vm_proc(mid, "/bin/c", None, alice()).unwrap();
    let info = w.run_until_exit(mid, p, 1_000_000).expect("creat exits");
    assert_eq!(info.status, 0);
    assert_eq!(w.machine(mid).pending_dump_pids(), vec![42]);
    assert_eq!(scan_dump_pids(&w, mid), vec![42]);

    let p = w.spawn_vm_proc(mid, "/bin/u", None, alice()).unwrap();
    let info = w.run_until_exit(mid, p, 1_000_000).expect("unlink exits");
    assert_eq!(info.status, 0);
    assert!(w.machine(mid).pending_dump_pids().is_empty());
    assert!(scan_dump_pids(&w, mid).is_empty());
}
