//! Whole-system integration tests spanning every crate: the complete
//! paper narrative end to end.

use m68vm::{assemble, IsaLevel};
use pmig::commands::RestartArgs;
use pmig::{api, workloads};
use simtime::SimDuration;
use sysdefs::{Credentials, Gid, Uid};
use ukernel::{KernelConfig, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

/// The complete abstract, in one test: "processes that do not communicate
/// with other processes and that do not take actions that depend on
/// knowledge of the execution environment, can be moved from one machine
/// to another while running, in a transparent way."
#[test]
fn abstract_claim_end_to_end() {
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    let obj = assemble(workloads::TEST_PROGRAM).unwrap();
    w.install_program(brick, "/bin/testprog", &obj).unwrap();
    let (tty, console) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/testprog", Some(tty), alice())
        .unwrap();
    w.run_slices(50_000);
    console.type_input("alpha\n");
    w.run_slices(50_000);

    // The machine is "about to go down": move the process away. The
    // command is typed on a schooner terminal, where the process will
    // reattach.
    let (cmd_tty, _cmd_console) = w.add_terminal(schooner);
    let new_pid = api::migrate_process(
        &mut w,
        pid,
        brick,
        schooner,
        schooner,
        Some(cmd_tty),
        alice(),
    )
    .expect("migration succeeds");

    // The process keeps working on schooner, its state intact.
    w.run_slices(100_000);
    let p = w.proc_ref(schooner, new_pid).expect("alive on schooner");
    let tty2 = p.user.tty.expect("attached to a terminal");
    let console2 = w.terminal(tty2);
    console2.type_input("beta\n");
    w.run_slices(100_000);
    assert!(
        console2.output_text().contains("R3 S3 K3"),
        "state carried over: {:?}",
        console2.output_text()
    );
    console2.with(|t| t.close());
    let info = w
        .run_until_exit(schooner, new_pid, 200_000)
        .expect("finishes normally");
    assert_eq!(info.status, 0);
    // Both lines are in the (brick-local) output file, reached over NFS
    // after the move.
    let out = w.host_read_file(brick, "/tmp/testout").unwrap();
    assert_eq!(String::from_utf8_lossy(&out), "alpha\nbeta\n");
}

/// §3's naming convention in action: the same file seen from both
/// machines, plus the paper's symlink trap and its readlink fix.
#[test]
fn nfs_namespace_and_the_symlink_trap() {
    let mut w = World::new(KernelConfig::paper());
    let classic = w.add_machine("classic", IsaLevel::Isa1);
    let brador = w.add_machine("brador", IsaLevel::Isa1);
    // /usr2 on classic is really brador's disk (the footnote's example:
    // user directories live on the file server).
    w.host_mkdir_p(brador, "/export/u2/alice").unwrap();
    w.host_write_file(brador, "/export/u2/alice/thesis.tex", b"\\title{Migration}")
        .unwrap();
    let setup = w.spawn_native_proc(
        classic,
        "setup",
        None,
        Credentials::root(),
        Box::new(|sys| {
            sys.symlink("/n/brador/export/u2", "/u2").unwrap();
            // A program on classic opens the file by its convenient name.
            let fd = sys.open("/u2/alice/thesis.tex", 0, 0).unwrap();
            let contents = sys.read_all(fd).unwrap();
            assert_eq!(contents, b"\\title{Migration}");
            sys.close(fd).unwrap();
            // The naive rewrite /n/classic/u2/... would die with EREMOTE
            // on another machine; the readlink-based rewrite gives the
            // correct brador name.
            let fixed =
                pmig::resolve::rewrite_for_migration(sys, "/u2/alice/thesis.tex", "classic")
                    .unwrap();
            assert_eq!(fixed, "/n/brador/export/u2/alice/thesis.tex");
            0
        }),
    );
    let info = w.run_until_exit(classic, setup, 500_000).expect("setup");
    assert_eq!(info.status, 0);
    // And the naive name really does fail from elsewhere.
    let prober = w.spawn_native_proc(
        brador,
        "probe",
        None,
        Credentials::root(),
        Box::new(|sys| match sys.open("/n/classic/u2/alice/thesis.tex", 0, 0) {
            Err(sysdefs::Errno::EREMOTE) => 0,
            other => {
                let _ = other;
                1
            }
        }),
    );
    let info = w.run_until_exit(brador, prober, 500_000).expect("probe");
    assert_eq!(info.status, 0, "NFS must refuse the double-hop name");
}

/// The conclusion's performance claim: "stopping a process and
/// restarting it on another machine requires a time comparable to that
/// of killing the process to obtain a core dump and then restarting the
/// process at the beginning ... using the standard UNIX system calls."
#[test]
fn conclusion_comparable_cost_claim() {
    // Cost of the migration machinery (SIGDUMP + rest_proc, kernel side).
    let fig2 = bench::fig2();
    let fig3 = bench::fig3();
    let sigquit_real = fig2[0].real_ms;
    let sigdump_real = fig2[1].real_ms;
    let execve_real = fig3[0].real_ms;
    let restproc_real = fig3[1].real_ms;
    // "Comparable": the same order of magnitude, within ~4x.
    assert!(sigdump_real < 4.0 * sigquit_real);
    assert!(restproc_real < 4.0 * execve_real);
}

/// Process accounting sanity across a migration: CPU time restarts on
/// the new machine, ages are tracked per incarnation.
#[test]
fn accounting_across_migration() {
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    let obj = assemble(&workloads::cpu_hog_program(30)).unwrap();
    w.install_program(brick, "/bin/hog", &obj).unwrap();
    let pid = w.spawn_vm_proc(brick, "/bin/hog", None, alice()).unwrap();
    w.run_until_time(w.machine(brick).now + SimDuration::millis(400), 1_000_000);
    let before = w.proc_ref(brick, pid).expect("running").cpu_time();
    assert!(before > SimDuration::millis(100), "hog is burning cpu");

    let status = api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
    assert_eq!(status, 0);
    let new_pid = api::run_restart(
        &mut w,
        schooner,
        RestartArgs {
            pid,
            dump_host: Some("brick".into()),
            demand: false,
        },
        None,
        alice(),
    )
    .expect("restart");
    let info = w
        .run_until_exit(schooner, new_pid, 50_000_000)
        .expect("hog finishes on schooner");
    assert_eq!(info.status, 0);
    assert!(
        info.cpu() > SimDuration::millis(200),
        "the remaining computation happened on schooner"
    );
    // Machine stats recorded the event stream.
    assert_eq!(w.machine(brick).stats.dumps, 1);
    assert_eq!(w.machine(schooner).stats.restores, 1);
}

/// A chain of migrations: brick -> schooner -> brick, state preserved
/// across both hops.
#[test]
fn double_migration_round_trip() {
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    let obj = assemble(workloads::TEST_PROGRAM).unwrap();
    w.install_program(brick, "/bin/testprog", &obj).unwrap();
    let (tty, console) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/testprog", Some(tty), alice())
        .unwrap();
    w.run_slices(50_000);
    console.type_input("one\n");
    w.run_slices(50_000);

    let (tty_s, _cs) = w.add_terminal(schooner);
    let on_schooner =
        api::migrate_process(&mut w, pid, brick, schooner, schooner, Some(tty_s), alice())
            .expect("first hop");
    w.run_slices(100_000);
    let t2 = w
        .proc_ref(schooner, on_schooner)
        .and_then(|p| p.user.tty)
        .expect("tty on schooner");
    w.terminal(t2).type_input("two\n");
    w.run_slices(100_000);

    let (tty_b, _cb) = w.add_terminal(brick);
    let back_home = api::migrate_process(
        &mut w,
        on_schooner,
        schooner,
        brick,
        brick,
        Some(tty_b),
        alice(),
    )
    .expect("second hop");
    w.run_slices(100_000);
    let t3 = w
        .proc_ref(brick, back_home)
        .and_then(|p| p.user.tty)
        .expect("tty back on brick");
    let c3 = w.terminal(t3);
    c3.type_input("three\n");
    w.run_slices(100_000);
    assert!(
        c3.output_text().contains("R4 S4 K4"),
        "two hops, counters intact: {:?}",
        c3.output_text()
    );
    c3.with(|t| t.close());
    let info = w.run_until_exit(brick, back_home, 200_000).expect("done");
    assert_eq!(info.status, 0);
    let out = w.host_read_file(brick, "/tmp/testout").unwrap();
    assert_eq!(String::from_utf8_lossy(&out), "one\ntwo\nthree\n");
}

/// Pipes share the socket limitation: a shell-style pipeline cannot be
/// migrated, but each endpoint degrades to /dev/null instead of
/// corrupting anything.
#[test]
fn pipeline_degrades_cleanly() {
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    // A producer writing into a pipe it created, then reading the tty.
    let obj = assemble(
        r#"
        start:  move.l  #42, d0     | pipe()
                trap    #0
                move.l  d0, d5
                and.l   #0xffff, d5 | read end
                move.l  d0, d6
                lsr.l   #16, d6     | write end
        loop:   move.l  #4, d0      | write a byte into the pipe
                move.l  d6, d1
                move.l  #mark, d2
                move.l  #1, d3
                trap    #0
                move.l  #3, d0      | wait for terminal input
                move.l  #0, d1
                move.l  #buf, d2
                move.l  #16, d3
                trap    #0
                bcs     out
                tst.l   d0
                beq     out
                bra     loop
        out:    move.l  #1, d0
                move.l  #0, d1
                trap    #0
                .data
        mark:   .byte   '#'
                .bss
        buf:    .space  16
        "#,
    )
    .unwrap();
    w.install_program(brick, "/bin/piper", &obj).unwrap();
    let (tty, console) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/piper", Some(tty), alice())
        .unwrap();
    w.run_slices(50_000);

    let status = api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
    assert_eq!(status, 0);
    // The dump tags both pipe fds as sockets.
    let names = dumpfmt::dump_file_names(pid);
    let files =
        dumpfmt::FilesFile::decode(&w.host_read_file(brick, &names.files).unwrap()).unwrap();
    let sockets = files
        .fds
        .iter()
        .filter(|f| matches!(f, dumpfmt::FdRecord::Socket))
        .count();
    assert_eq!(sockets, 2, "both pipe ends dumped as sockets");

    let (tty2, console2) = w.add_terminal(schooner);
    let new_pid = api::run_restart(
        &mut w,
        schooner,
        RestartArgs {
            pid,
            dump_host: Some("brick".into()),
            demand: false,
        },
        Some(tty2),
        alice(),
    )
    .expect("restart despite pipes");
    // The restored program writes its marks into /dev/null now but is
    // otherwise alive and interactive.
    w.run_slices(100_000);
    console2.type_input("tick\n");
    w.run_slices(100_000);
    console2.with(|t| t.close());
    let info = w.run_until_exit(schooner, new_pid, 200_000).expect("exits");
    assert_eq!(info.status, 0);
    let _ = console;
}
