//! The 1-vs-N oracle for sharded execution (DESIGN.md §14).
//!
//! `Exec::Parallel { threads }` partitions machines across host
//! threads under a conservative lockstep window; the seam layer
//! routes every cross-machine effect through a deterministically
//! ordered queue. The contract this test pins down: **thread count is
//! not simulated state**. One cluster scenario, run serially and at
//! 1, 2, 4 and 8 threads, must end in bit-identical worlds — with
//! fault injection off *and* on (the PR-4 sites plus demand-restore
//! page fetches), because the fault RNG draws are simulation events
//! that must not move when the host parallelism changes.
//!
//! The scenario deliberately mixes every coupling class the window
//! scheduler handles:
//!   - tickers on every host: uncoupled VM work the shards run in
//!     parallel (Phase A);
//!   - a remote writer and a remote open/close reader: VM syscalls
//!     that hit a *foreign* filesystem, exercising the staged-trap
//!     gate and the `cross_call` seam (creat/write/unlink on
//!     `/n/h0/...`);
//!   - the Figure-4 migrate thread: a tty-blocked test program pulled
//!     between hosts by a native `migrate` command (rsh daemons,
//!     SIGDUMP, NFS dump traffic — all coupled, all Phase B);
//!   - a dump + demand-restore pair: the restored process fetches its
//!     residual pages from the dump host on first touch, so the
//!     `PageFetch` fault site actually fires under the faulty plan.
//!
//! Everything is driven by `run_until_time` deadlines: a deadline
//! parks every machine clock at the same instant in both modes, so
//! later spawns happen at identical simulated times. (`run_until_exit`
//! would not work here: the parallel loop only checks for the exit
//! between windows, so it may legitimately overshoot the serial stop
//! point by up to one window.)

mod common;

use m68vm::{assemble, IsaLevel};
use simtime::{SimDuration, SimTime};
use sysdefs::{Credentials, Gid, Uid};
use ukernel::{Exec, KernelConfig, RunOutcome, World};

const HOSTS: usize = 8;

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

/// A sleep-loop ticker that outlives the scenario: uncoupled Phase A
/// work on every host (no fs traffic, so foreign readers of this
/// host's fs see a quiescent server — the §14 serial-equality
/// precondition).
fn ticker_program(beats: u32) -> String {
    format!(
        r#"
start:  move.l  #{beats}, d7
beat:   move.l  #150, d0            | sleep(2000us)
        move.l  #2000, d1
        trap    #0
        sub.l   #1, d7
        bgt     beat
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
"#
    )
}

/// Creats a file on a *foreign* host, appends to it `n` times with a
/// sleep between writes (spreading the traps over many lockstep
/// windows), then unlinks it: FsCreate, FsWrite and FsUnlink all
/// cross the seam.
fn remote_writer_program(path: &str, n: u32) -> String {
    format!(
        r#"
start:  move.l  #8, d0              | creat(path, 0644)
        move.l  #fname, d1
        move.l  #420, d2
        trap    #0
        bcs     fail
        move.l  d0, d7
        move.l  #{n}, d6
wr:     move.l  #4, d0              | write(fd, msg, msglen)
        move.l  d7, d1
        move.l  #msg, d2
        move.l  #msglen, d3
        trap    #0
        bcs     fail
        move.l  #150, d0            | sleep(700us)
        move.l  #700, d1
        trap    #0
        sub.l   #1, d6
        bgt     wr
        move.l  #6, d0              | close(fd)
        move.l  d7, d1
        trap    #0
        move.l  #10, d0             | unlink(path)
        move.l  #fname, d1
        trap    #0
        move.l  #1, d0              | exit(0)
        move.l  #0, d1
        trap    #0
fail:   move.l  #1, d0              | exit(2)
        move.l  #2, d1
        trap    #0
        .data
fname:  .asciz  "{path}"
msg:    .ascii  "seam\n"
        .equ    msglen, 5
"#
    )
}

/// Open/close loop against a foreign path: every open is a staged
/// trap while the machine is uncoupled, and every held fd couples the
/// client to the file's server for the window it spans.
fn remote_openclose_program(path: &str, n: u32) -> String {
    format!(
        r#"
start:  move.l  #{n}, d6
loop:   move.l  #5, d0              | open(path, RDONLY)
        move.l  #fname, d1
        move.l  #0, d2
        trap    #0
        bcs     fail
        move.l  d0, d1              | close(fd)
        move.l  #6, d0
        trap    #0
        move.l  #150, d0            | sleep(900us)
        move.l  #900, d1
        trap    #0
        sub.l   #1, d6
        bgt     loop
        move.l  #1, d0              | exit(0)
        move.l  #0, d1
        trap    #0
fail:   move.l  #1, d0              | exit(1)
        move.l  #1, d1
        trap    #0
        .data
fname:  .asciz  "{path}"
"#
    )
}

/// Runs the cluster scenario under `exec` and renders the final world
/// into the canonical snapshot. `require_success` is on for fault-free
/// runs only: under injected faults the migrate may legitimately end
/// with the process back at the source.
fn run_cluster(exec: Exec, faults: simnet::FaultPlan, require_success: bool) -> String {
    let mut config = KernelConfig::paper();
    config.exec = exec;
    let mut w = World::new(config);
    w.faults = faults;
    for i in 0..HOSTS {
        w.add_machine(&format!("h{i}"), IsaLevel::Isa1);
    }

    // Uncoupled background load on every host.
    let tick = assemble(&ticker_program(5_000)).unwrap();
    for i in 0..HOSTS {
        w.install_program(i, "/bin/tick", &tick).unwrap();
        w.spawn_vm_proc(i, "/bin/tick", None, alice()).unwrap();
    }

    // Seam traffic into h0's filesystem from h1 and h2.
    let writer = assemble(&remote_writer_program("/n/h0/tmp/rw", 24)).unwrap();
    w.install_program(1, "/bin/rwrite", &writer).unwrap();
    w.spawn_vm_proc(1, "/bin/rwrite", None, alice()).unwrap();
    let reader = assemble(&remote_openclose_program("/n/h0/bin/tick", 30)).unwrap();
    w.install_program(2, "/bin/ropen", &reader).unwrap();
    w.spawn_vm_proc(2, "/bin/ropen", None, alice()).unwrap();

    // The Figure-4 migrate thread: test program at its prompt on h6.
    let testprog = assemble(pmig::workloads::TEST_PROGRAM).unwrap();
    w.install_program(6, "/bin/testprog", &testprog).unwrap();
    let (tty, _handle) = w.add_terminal(6);
    let victim = w.spawn_vm_proc(6, "/bin/testprog", Some(tty), alice()).unwrap();

    // The demand-restore pair: a dirty hog on h4 whose dump h5 will
    // restore with `-d`, fetching residual pages over the wire.
    let hog = assemble(&pmig::workloads::dirty_hog_program(200_000, 10 * 0x2000)).unwrap();
    w.install_program(4, "/bin/hog", &hog).unwrap();
    let hog_pid = w.spawn_vm_proc(4, "/bin/hog", None, alice()).unwrap();

    // Let everything reach steady state (the test program blocks at
    // its prompt, the hog dirties its pages, the seam traffic flows).
    let budget = 50_000_000;
    assert_eq!(
        w.run_until_time(SimTime::BOOT + SimDuration::millis(100), budget),
        RunOutcome::Idle,
        "phase 1 must drain within budget"
    );

    // Kick off the migrate (h6 -> h7, driven from h7) and the dump.
    let cmd = w.spawn_native_proc(
        7,
        "migrate",
        None,
        alice(),
        Box::new(move |sys| match pmig::migrate(sys, victim, "h6", "h7") {
            Ok(status) => status,
            Err(e) => e.as_u16() as u32,
        }),
    );
    let dumper = w.spawn_native_proc(
        4,
        "dumpproc",
        None,
        alice(),
        Box::new(move |sys| match pmig::commands::dumpproc(sys, hog_pid) {
            Ok(()) => 0,
            Err(e) => e.as_u16() as u32,
        }),
    );
    assert_eq!(
        w.run_until_time(SimTime::BOOT + SimDuration::millis(500), budget),
        RunOutcome::Idle,
        "phase 2 must drain within budget"
    );

    // Demand-restore the hog on h5 from h4's dump files.
    let restarter = w.spawn_native_proc(
        5,
        "restart",
        None,
        alice(),
        Box::new(move |sys| {
            let args = pmig::commands::RestartArgs {
                pid: hog_pid,
                dump_host: Some("h4".to_string()),
                demand: true,
            };
            pmig::commands::restart(sys, &args).as_u16() as u32
        }),
    );
    // The rsh-driven migrate takes ~11.6s of simulated time (daemon
    // connect phases and dump/restart backoffs), so the final deadline
    // sits well past it.
    assert_eq!(
        w.run_until_time(SimTime::BOOT + SimDuration::secs(14), budget),
        RunOutcome::Idle,
        "phase 3 must drain within budget"
    );

    if require_success {
        let info = w
            .finished
            .get(&(7, cmd.0))
            .expect("migrate command finishes before the final deadline");
        assert_eq!(info.status, 0, "migrate must succeed in the fault-free run");
        let info = w
            .finished
            .get(&(4, dumper.0))
            .expect("dumpproc finishes before the final deadline");
        assert_eq!(info.status, 0, "dumpproc must succeed in the fault-free run");
        // The restarter never *returns* on success — it became the
        // restored hog — so success is it not having exited with an
        // errno status.
        assert!(
            !w.finished.contains_key(&(5, restarter.0)),
            "restart must not fail in the fault-free run"
        );
        assert!(
            w.machine(5).stats.pages_fetched > 0,
            "the demand-restored hog must actually fetch residual pages"
        );
    }

    common::snapshot_world(&w)
}

/// The faulty plan: the PR-4 dump/NFS sites plus the demand-restore
/// page-fetch site, all on one seed. The dump crash is scoped to the
/// migrate thread's source host so the h4 dump survives and the demand
/// restore still runs far enough for `PageFetch` to be eligible.
fn faulty_plan() -> simnet::FaultPlan {
    use simnet::{FaultPlan, FaultSite, FaultSpec};
    FaultPlan::seeded(0xDECAF)
        .with(FaultSpec {
            machine: Some(6),
            ..FaultSpec::always(FaultSite::MidDumpCrash, 1)
        })
        .with(FaultSpec::always(FaultSite::NfsOp, 2))
        .with(FaultSpec::always(FaultSite::PageFetch, 1))
}

#[test]
fn parallel_matches_serial_without_faults() {
    let serial = run_cluster(Exec::Serial, simnet::FaultPlan::none(), true);
    assert!(
        serial.contains("machine 0 h0") && serial.contains("machine 7 h7"),
        "snapshot looks degenerate:\n{serial}"
    );
    for threads in [1usize, 2, 4, 8] {
        let parallel = run_cluster(Exec::Parallel { threads }, simnet::FaultPlan::none(), true);
        assert_eq!(
            serial, parallel,
            "Exec::Parallel {{ threads: {threads} }} diverged from Exec::Serial"
        );
    }
}

#[test]
fn parallel_matches_serial_with_faults() {
    let serial = run_cluster(Exec::Serial, faulty_plan(), false);
    // The bounded ktrace ring has long since evicted the fault records
    // by the 14s deadline; the per-machine `faults=` counters in the
    // stats rows prove the plan actually fired.
    let injected: u64 = serial
        .lines()
        .filter_map(|l| l.split("faults=").nth(1))
        .filter_map(|rest| rest.split_whitespace().next())
        .filter_map(|n| n.parse::<u64>().ok())
        .sum();
    assert!(
        injected > 0,
        "injected faults must show in the stats counters:\n{serial}"
    );
    for threads in [1usize, 2, 4, 8] {
        let parallel = run_cluster(Exec::Parallel { threads }, faulty_plan(), false);
        assert_eq!(
            serial, parallel,
            "Exec::Parallel {{ threads: {threads} }} diverged from Exec::Serial under faults"
        );
    }
}
